#include "service/message.h"

namespace sqs {

namespace {

// All fields little-endian; offsets fixed by the layout tables below.
//
// Request (48 bytes):            Reply (56 bytes):
//   0  u32 magic "SQRQ"            0  u32 magic "SQRP"
//   4  u32 checksum                4  u32 checksum
//   8  u64 seq                     8  u64 seq
//  16  u64 arrival_us             16  u64 latency_us
//  24  u32 client                 24  u64 value
//  28  u8  kind                   32  u64 ts.counter
//  29  u8[3] reserved (zero)      40  i32 ts.writer
//  32  u64 value                  44  u32 probes
//  40  u32 cert (client key)      48  u8  kind
//  44  u8[4] reserved (zero)      49  u8  ok
//                                 50  u8[2] reserved (zero)
//                                 52  u32 cert (service key, bytes [8, 52))
//
// The checksum is FNV-1a over the record with bytes [4, 8) zeroed.
// Reserved bytes are enforced zero on decode (see header).

template <typename T>
void put(std::uint8_t* out, std::size_t offset, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out[offset + i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * i));
}

template <typename T>
T get(const std::uint8_t* in, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  return static_cast<T>(v);
}

std::uint32_t record_checksum(const std::uint8_t* rec, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t byte = (i >= 4 && i < 8) ? 0 : rec[i];
    h ^= byte;
    h *= 16777619u;
  }
  return h;
}

// True iff bytes [begin, end) are all zero.
bool zero_range(const std::uint8_t* rec, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i)
    if (rec[i] != 0) return false;
  return true;
}

}  // namespace

std::uint32_t request_cert(const Request& req) {
  // Canonical 29-byte signing buffer: the semantic fields in wire order.
  std::uint8_t buf[29];
  put<std::uint64_t>(buf, 0, req.seq);
  put<std::uint64_t>(buf, 8, req.arrival_us);
  put<std::uint32_t>(buf, 16, req.client);
  put<std::uint8_t>(buf, 20, static_cast<std::uint8_t>(req.kind));
  put<std::uint64_t>(buf, 21, req.value);
  return hmac32(cert_key(req.client), buf, sizeof buf);
}

std::uint32_t replica_cert(int replica, const Timestamp& ts,
                           std::uint64_t value) {
  std::uint8_t buf[20];
  put<std::uint64_t>(buf, 0, ts.counter);
  put<std::uint32_t>(buf, 8, static_cast<std::uint32_t>(ts.writer));
  put<std::uint64_t>(buf, 12, value);
  return hmac32(
      cert_key(kReplicaPrincipalBase + static_cast<std::uint64_t>(replica)),
      buf, sizeof buf);
}

void encode_request(const Request& req, std::uint8_t* out) {
  std::memset(out, 0, kRequestWireSize);
  put<std::uint32_t>(out, 0, kRequestMagic);
  put<std::uint64_t>(out, 8, req.seq);
  put<std::uint64_t>(out, 16, req.arrival_us);
  put<std::uint32_t>(out, 24, req.client);
  put<std::uint8_t>(out, 28, static_cast<std::uint8_t>(req.kind));
  put<std::uint64_t>(out, 32, req.value);
  put<std::uint32_t>(out, 40, request_cert(req));
  put<std::uint32_t>(out, 4, record_checksum(out, kRequestWireSize));
}

Request decode_request(const std::uint8_t* in) {
  Request req;
  if (get<std::uint32_t>(in, 0) != kRequestMagic) return req;
  if (get<std::uint32_t>(in, 4) != record_checksum(in, kRequestWireSize))
    return req;
  const std::uint8_t kind = get<std::uint8_t>(in, 28);
  if (kind > static_cast<std::uint8_t>(OpKind::kWrite)) return req;
  if (!zero_range(in, 29, 32) || !zero_range(in, 44, 48)) return req;
  req.seq = get<std::uint64_t>(in, 8);
  req.arrival_us = get<std::uint64_t>(in, 16);
  req.client = get<std::uint32_t>(in, 24);
  req.kind = static_cast<OpKind>(kind);
  req.value = get<std::uint64_t>(in, 32);
  req.cert = get<std::uint32_t>(in, 40);
  req.valid = true;
  return req;
}

void encode_reply(const Reply& rep, std::uint8_t* out) {
  std::memset(out, 0, kReplyWireSize);
  put<std::uint32_t>(out, 0, kReplyMagic);
  put<std::uint64_t>(out, 8, rep.seq);
  put<std::uint64_t>(out, 16, rep.latency_us);
  put<std::uint64_t>(out, 24, rep.value);
  put<std::uint64_t>(out, 32, rep.ts.counter);
  put<std::uint32_t>(out, 40, static_cast<std::uint32_t>(rep.ts.writer));
  put<std::uint32_t>(out, 44, rep.probes);
  put<std::uint8_t>(out, 48, static_cast<std::uint8_t>(rep.kind));
  put<std::uint8_t>(out, 49, rep.ok ? 1 : 0);
  // Service signature over the semantic bytes [8, 52) — after the fields,
  // before the checksum, so the cert is itself checksummed.
  put<std::uint32_t>(out, 52, hmac32(cert_key(kServicePrincipal), out + 8, 44));
  put<std::uint32_t>(out, 4, record_checksum(out, kReplyWireSize));
}

bool decode_reply(const std::uint8_t* in, Reply* out) {
  if (get<std::uint32_t>(in, 0) != kReplyMagic) return false;
  if (get<std::uint32_t>(in, 4) != record_checksum(in, kReplyWireSize))
    return false;
  const std::uint8_t kind = get<std::uint8_t>(in, 48);
  if (kind > static_cast<std::uint8_t>(OpKind::kWrite)) return false;
  if (!zero_range(in, 50, 52)) return false;
  if (get<std::uint32_t>(in, 52) !=
      hmac32(cert_key(kServicePrincipal), in + 8, 44))
    return false;
  out->seq = get<std::uint64_t>(in, 8);
  out->latency_us = get<std::uint64_t>(in, 16);
  out->value = get<std::uint64_t>(in, 24);
  out->ts.counter = get<std::uint64_t>(in, 32);
  out->ts.writer = static_cast<int>(get<std::uint32_t>(in, 40));
  out->probes = get<std::uint32_t>(in, 44);
  out->kind = static_cast<OpKind>(kind);
  out->cert = get<std::uint32_t>(in, 52);
  out->ok = get<std::uint8_t>(in, 49) != 0;
  return true;
}

}  // namespace sqs
