#include "service/message.h"

namespace sqs {

namespace {

// All fields little-endian; offsets fixed by the layout tables below.
//
// Request (40 bytes):            Reply (56 bytes):
//   0  u32 magic "SQRQ"            0  u32 magic "SQRP"
//   4  u32 checksum                4  u32 checksum
//   8  u64 seq                     8  u64 seq
//  16  u64 arrival_us             16  u64 latency_us
//  24  u32 client                 24  u64 value
//  28  u8  kind                   32  u64 ts.counter
//  29  u8[3] reserved (zero)      40  i32 ts.writer
//  32  u64 value                  44  u32 probes
//                                 48  u8  kind
//                                 49  u8  ok
//                                 50  u8[6] reserved (zero)
//
// The checksum is FNV-1a over the record with bytes [4, 8) zeroed.

template <typename T>
void put(std::uint8_t* out, std::size_t offset, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out[offset + i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * i));
}

template <typename T>
T get(const std::uint8_t* in, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  return static_cast<T>(v);
}

std::uint32_t record_checksum(const std::uint8_t* rec, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t byte = (i >= 4 && i < 8) ? 0 : rec[i];
    h ^= byte;
    h *= 16777619u;
  }
  return h;
}

}  // namespace

void encode_request(const Request& req, std::uint8_t* out) {
  std::memset(out, 0, kRequestWireSize);
  put<std::uint32_t>(out, 0, kRequestMagic);
  put<std::uint64_t>(out, 8, req.seq);
  put<std::uint64_t>(out, 16, req.arrival_us);
  put<std::uint32_t>(out, 24, req.client);
  put<std::uint8_t>(out, 28, static_cast<std::uint8_t>(req.kind));
  put<std::uint64_t>(out, 32, req.value);
  put<std::uint32_t>(out, 4, record_checksum(out, kRequestWireSize));
}

Request decode_request(const std::uint8_t* in) {
  Request req;
  if (get<std::uint32_t>(in, 0) != kRequestMagic) return req;
  if (get<std::uint32_t>(in, 4) != record_checksum(in, kRequestWireSize))
    return req;
  const std::uint8_t kind = get<std::uint8_t>(in, 28);
  if (kind > static_cast<std::uint8_t>(OpKind::kWrite)) return req;
  req.seq = get<std::uint64_t>(in, 8);
  req.arrival_us = get<std::uint64_t>(in, 16);
  req.client = get<std::uint32_t>(in, 24);
  req.kind = static_cast<OpKind>(kind);
  req.value = get<std::uint64_t>(in, 32);
  req.valid = true;
  return req;
}

void encode_reply(const Reply& rep, std::uint8_t* out) {
  std::memset(out, 0, kReplyWireSize);
  put<std::uint32_t>(out, 0, kReplyMagic);
  put<std::uint64_t>(out, 8, rep.seq);
  put<std::uint64_t>(out, 16, rep.latency_us);
  put<std::uint64_t>(out, 24, rep.value);
  put<std::uint64_t>(out, 32, rep.ts.counter);
  put<std::uint32_t>(out, 40, static_cast<std::uint32_t>(rep.ts.writer));
  put<std::uint32_t>(out, 44, rep.probes);
  put<std::uint8_t>(out, 48, static_cast<std::uint8_t>(rep.kind));
  put<std::uint8_t>(out, 49, rep.ok ? 1 : 0);
  put<std::uint32_t>(out, 4, record_checksum(out, kReplyWireSize));
}

bool decode_reply(const std::uint8_t* in, Reply* out) {
  if (get<std::uint32_t>(in, 0) != kReplyMagic) return false;
  if (get<std::uint32_t>(in, 4) != record_checksum(in, kReplyWireSize))
    return false;
  out->seq = get<std::uint64_t>(in, 8);
  out->latency_us = get<std::uint64_t>(in, 16);
  out->value = get<std::uint64_t>(in, 24);
  out->ts.counter = get<std::uint64_t>(in, 32);
  out->ts.writer = static_cast<int>(get<std::uint32_t>(in, 40));
  out->probes = get<std::uint32_t>(in, 44);
  out->kind = static_cast<OpKind>(get<std::uint8_t>(in, 48));
  out->ok = get<std::uint8_t>(in, 49) != 0;
  return true;
}

}  // namespace sqs
