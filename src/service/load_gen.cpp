#include "service/load_gen.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/recorder.h"

namespace sqs {

std::uint64_t LoadGenConfig::total_ops() const {
  if (!(rate > 0.0) || !(duration > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(rate * duration));
}

bool LoadGenConfig::validate() const {
  bool ok = true;
  const auto reject = [&ok](const char* what, double value) {
    std::fprintf(stderr, "LoadGenConfig: invalid %s %g\n", what, value);
    ok = false;
  };
  if (!(rate > 0.0) || !std::isfinite(rate)) reject("rate", rate);
  if (!(duration > 0.0) || !std::isfinite(duration))
    reject("duration", duration);
  if (!(read_fraction >= 0.0 && read_fraction <= 1.0))
    reject("read_fraction", read_fraction);
  if (num_clients < 1) reject("num_clients", num_clients);
  if (ok && total_ops() == 0) {
    std::fprintf(stderr, "LoadGenConfig: rate * duration rounds to zero ops\n");
    ok = false;
  }
  return ok;
}

std::vector<std::uint8_t> generate_load(const LoadGenConfig& config,
                                        const TrialOptions& opts) {
  assert(config.validate());
  const std::uint64_t n = config.total_ops();
  std::vector<std::uint8_t> wire(n * kRequestWireSize);
  std::uint8_t* base = wire.data();

  // Chunks write disjoint record ranges, so the shared buffer needs no
  // synchronization; all randomness comes from the chunk rng, so the bytes
  // are identical for any thread count. Arrival (i + u_i) / rate with
  // u_i in [0, 1) is strictly increasing in i.
  run_trial_chunks(
      n, Rng(config.seed).split("loadgen"), 0,
      [&](int&, const TrialChunk& chunk, Rng& rng) {
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
          const double u = rng.next_double();
          const std::uint32_t client = static_cast<std::uint32_t>(
              rng.next_below(static_cast<std::uint64_t>(config.num_clients)));
          const bool is_read = rng.bernoulli(config.read_fraction);
          Request req;
          req.seq = i;
          req.arrival_us = static_cast<std::uint64_t>(
              (static_cast<double>(i) + u) / config.rate * 1e6);
          req.client = client;
          req.kind = is_read ? OpKind::kRead : OpKind::kWrite;
          req.value = is_read ? 0 : i + 1;  // nonzero, unique per write
          encode_request(req, base + i * kRequestWireSize);
          obs::flight(obs::FlightKind::kGenerated,
                      obs::make_op_id(obs::kServiceStream, i), req.arrival_us,
                      -1, client);
        }
      },
      [](int&, int&&) {}, opts);

  return wire;
}

double parse_positive_double(const char* flag, const char* text) {
  const auto reject = [flag, text]() {
    std::fprintf(stderr, "%s: invalid value '%s' (want a positive number)\n",
                 flag, text == nullptr ? "" : text);
    return 0.0;
  };
  if (text == nullptr || *text == '\0') return reject();
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return reject();
  if (!std::isfinite(v) || !(v > 0.0)) return reject();
  return v;
}

}  // namespace sqs
