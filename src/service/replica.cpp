#include "service/replica.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"
#include "service/message.h"

namespace sqs {

namespace {

struct ReplicaMetrics {
  obs::Counter dropped =
      obs::Registry::instance().counter("service.replica.dropped_requests");
  obs::Counter regressions =
      obs::Registry::instance().counter("service.replica.ts_regressions");
  obs::Counter lies =
      obs::Registry::instance().counter("service.replica.lies_told");
  static const ReplicaMetrics& get() {
    static const ReplicaMetrics m;
    return m;
  }
};

}  // namespace

ServiceReplica::ServiceReplica(int id, const ServerConfig& config, Rng rng)
    : id_(id), config_(config), rng_(std::move(rng)) {
  // Same draw order as SimServer: stationary state, then first toggle.
  up_ = !rng_.bernoulli(config_.stationary_down());
  next_toggle_ =
      rng_.exponential(1.0 / (up_ ? config_.mean_up : config_.mean_down));
}

void ServiceReplica::advance_failure_process(double now) const {
  while (next_toggle_ <= now) {
    up_ = !up_;
    if (up_ && config_.amnesia_on_recovery) objects_.clear();
    next_toggle_ +=
        rng_.exponential(1.0 / (up_ ? config_.mean_up : config_.mean_down));
  }
}

bool ServiceReplica::up(double now) const {
  advance_failure_process(now);
  if (now < forced_down_until_) return false;
  if (now < forced_up_until_) return true;
  return up_;
}

double ServiceReplica::begin_service(double now, double qnow) {
  // FIFO backlog on the monotone arrival clock (see header): the request
  // waits out the existing backlog, then runs for one (possibly
  // gray-inflated) service time.
  const double start = std::max(qnow, busy_until_);
  const double dt = service_time(now);
  busy_until_ = start + dt;
  busy_seconds_ += dt;
  return (start - qnow) + dt;  // wait + service
}

std::optional<ServiceReplica::ReadServed> ServiceReplica::serve_read(
    int object, double now, double qnow, int client) {
  if (!up(now) || fences_requests()) {  // fence backstop; runner checks first
    ++dropped_requests_;
    ReplicaMetrics::get().dropped.add(1);
    return std::nullopt;
  }
  const double done = now + begin_service(now, qnow);
  const Cell& cell = objects_[object];
  const auto max_it = max_ts_seen_.find(object);
  if (max_it != max_ts_seen_.end() && cell.ts < max_it->second) {
    ++ts_regressions_;
    ReplicaMetrics::get().regressions.add(1);
  }
  // The certificate always signs the TRUE stored state — the lie branch
  // below corrupts only the reported fields (unforgeable signatures).
  const std::uint32_t cert = replica_cert(id_, cell.ts, cell.value);
  if (lie_active(now) && lie_corrupts_read(lie_mode_, client)) {
    ++lies_told_;
    ReplicaMetrics::get().lies.add(1);
    if (lie_mode_ == LieMode::kStaleTs)
      return ReadServed{done, Timestamp{}, 0, cert};
    return ReadServed{done, fabricated_timestamp(id_, cell.ts),
                      fabricated_value(id_, cell.ts, cell.value), cert};
  }
  return ReadServed{done, cell.ts, cell.value, cert};
}

std::optional<double> ServiceReplica::serve_write(const Timestamp& ts,
                                                 std::uint64_t value,
                                                 int object, double now,
                                                 double qnow) {
  if (!up(now) || fences_requests()) {  // fence backstop; runner checks first
    ++dropped_requests_;
    ReplicaMetrics::get().dropped.add(1);
    return std::nullopt;
  }
  const double done = now + begin_service(now, qnow);
  if (lie_active(now) && lie_mode_ == LieMode::kFabricateAck) {
    // Ack without applying: the client counts this replica toward write
    // durability, but the state was dropped on the floor.
    ++lies_told_;
    ReplicaMetrics::get().lies.add(1);
    return done;
  }
  Cell& cell = objects_[object];
  if (cell.ts < ts) {
    cell.ts = ts;
    cell.value = value;
    Timestamp& max_seen = max_ts_seen_[object];
    max_seen = std::max(max_seen, ts);
  }
  return done;
}

std::optional<double> ServiceReplica::serve_fence(double now, double qnow) {
  if (!up(now)) {
    ++dropped_requests_;
    ReplicaMetrics::get().dropped.add(1);
    return std::nullopt;
  }
  return now + begin_service(now, qnow);
}

void ServiceReplica::adopt_state(const Timestamp& ts, std::uint64_t value,
                                 int object) {
  Cell& cell = objects_[object];
  if (cell.ts < ts) {
    cell.ts = ts;
    cell.value = value;
    Timestamp& max_seen = max_ts_seen_[object];
    max_seen = std::max(max_seen, ts);
  }
}

void ServiceReplica::force_crash(double now, double duration) {
  forced_down_until_ = std::max(forced_down_until_, now + duration);
}

void ServiceReplica::force_up(double now, double duration) {
  forced_up_until_ = std::max(forced_up_until_, now + duration);
}

void ServiceReplica::set_gray(double factor, double now, double duration) {
  gray_factor_ = factor;
  gray_until_ = now + duration;
}

void ServiceReplica::set_lie(LieMode mode, double now, double duration) {
  lie_mode_ = mode;
  lie_until_ = now + duration;
}

Timestamp ServiceReplica::timestamp(int object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? Timestamp{} : it->second.ts;
}

std::uint64_t ServiceReplica::value(int object) const {
  auto it = objects_.find(object);
  return it == objects_.end() ? 0 : it->second.value;
}

Timestamp ServiceReplica::max_timestamp_seen(int object) const {
  auto it = max_ts_seen_.find(object);
  return it == max_ts_seen_.end() ? Timestamp{} : it->second;
}

}  // namespace sqs
