// The staged request runner: SQS experiments as served traffic.
//
// ServiceRunner executes an encoded, arrival-ordered request stream in three
// stages, the classic staged-replica split (dsnet's Runner):
//
//   prologue  — stateless decode + checksum verification, fanned out over
//               the shared ThreadPool in batches;
//   solo      — every stateful step (probe strategy over the Transport,
//               replica reads/writes, fault-plan application, latency
//               accounting), executed strictly in arrival order under a
//               sequence-number ticket: batch b's owner blocks until
//               solo_turn == b, runs its batch's operations, hands the
//               ticket to b+1;
//   epilogue  — stateless reply encoding + checksumming, fanned out again.
//
// The ticket discipline is deadlock-free on the pool because for_each_chunk
// hands out batch indices through a monotone atomic ticket: claimed batches
// are a contiguous prefix, so the owner of the lowest unfinished batch is
// never waiting on a higher turn. And it makes the determinism contract of
// run_trials hold for served traffic: the solo stage observes the identical
// operation order at any thread count, per-op randomness comes from
// seed-split streams keyed by sequence number, and the stateless stages
// touch only their own batch's records — results are bit-identical for 1,
// 2, or N threads (tests/test_service.cpp asserts it).
//
// Time is virtual. Operation semantics and latencies are computed on the
// load schedule's deterministic timeline (probe RTTs from the Transport,
// queueing from ServiceReplica's busy window, timeouts from probe_timeout);
// the wall clock is used only for throughput reporting. Operations are
// evaluated to completion at their arrival point even though their probes
// extend past later arrivals — an *arrival-ordered linearization* that keeps
// replica/transport state exact along each op's own timeline while letting
// the ordered stage stream millions of ops (DESIGN.md "Staged service").

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <tuple>
#include <vector>

#include "core/epoch.h"
#include "core/quorum_family.h"
#include "faults/fault_plan.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "service/message.h"
#include "service/replica.h"
#include "sim/transport.h"

namespace sqs {

struct ServiceConfig {
  NetworkConfig network;
  ServerConfig server;
  int num_clients = 64;
  double probe_timeout = 0.25;  // seconds a probe waits for its reply
  int batch = 256;              // requests per solo ticket
  int threads = 0;              // total participating threads; 0 = default
  std::uint64_t seed = 1;
  FaultPlan plan;               // applied on the virtual timeline
  // Width of a windowed time-series bucket in virtual microseconds; 0
  // disables the timeline (see obs/timeline.h). Fed from the solo stage, so
  // the emitted series is bit-identical at any thread count.
  std::uint64_t timeline_window_us = 0;
  // Verify each replica reply's certificate against the reported (ts,
  // value) and treat mismatches as not-reached (the reply never joins the
  // quorum or votes). Default on: with honest replicas it never fires, so
  // behaviour and replies are bit-identical to a non-verifying runner; with
  // liars it strips fabrications off the quorum path. Request certificates
  // are always verified in the prologue.
  bool verify_replica_certs = true;
  // Masking vote (see sim/client.h): when > 0 a read adopts only the
  // highest-timestamped reply vouched for by >= lie_tolerance+1 replicas,
  // and a write derives its timestamp from voted replies; no voted pair
  // fails the op. 0 keeps the classic max-timestamp fold.
  int lie_tolerance = 0;

  // --- Epoch reconfiguration (src/core/epoch.h) ---------------------------
  // Non-null turns on epoch mode: the fleet is sized to epochs->num_logical,
  // the ctor family must be epoch 0's family, non-epoch-0 members start
  // retired, and transitions fire from the solo stage as the arrival clock
  // crosses each entry's time (deterministic — no rng stream moves). The
  // runner itself is the stale-view client: it keeps probing under its last
  // adopted view until an op observes epoch evidence (a fenced probe or a
  // reply stamped with a newer epoch) and refreshes via the bounded
  // view-fetch path below.
  std::shared_ptr<const EpochedFamily> epochs;
  // Stale-view recovery knobs (mirror sim/client.h): a failed acquisition
  // with epoch evidence re-probes under the fetched view after a fixed
  // (rng-free) delay, at most max_view_fetches times per op; a successful op
  // with evidence refreshes asynchronously. refresh_views = false pins the
  // runner to its stale view forever — the designed-to-fail switch.
  bool refresh_views = true;
  double view_fetch_delay = 0.05;
  int max_view_fetches = 4;

  // True iff every knob is usable for a fleet of `num_servers`; complaints
  // go to stderr, one line per bad field.
  bool validate(int num_servers) const;
};

struct ServiceResult {
  std::uint64_t requests = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t reads = 0, reads_ok = 0;
  std::uint64_t writes = 0, writes_ok = 0;
  // Reads that returned a timestamp below the highest ok-write timestamp
  // whose write had completed before the read arrived — the served-path
  // analogue of the harness's stale-read count.
  std::uint64_t stale_reads = 0;
  std::uint64_t probes = 0;      // acquisition probes across all ops
  std::uint64_t write_acks = 0;  // per-target acks across all ok writes
  std::uint64_t replica_dropped = 0;
  std::uint64_t ts_regressions = 0;
  std::uint64_t net_delivered = 0, net_dropped = 0;
  // 1 if some write was acked yet no replica still holds a timestamp >= the
  // highest acked write's — the no-lost-acked-write invariant, violated
  // only when state durability is broken (amnesia), never by crashes or
  // partitions alone.
  std::uint64_t lost_acked_writes = 0;
  // Certificate rejections: requests whose client cert failed the prologue
  // check, plus replica replies whose cert did not match the reported
  // contents (each such reply is excluded from its op's quorum).
  std::uint64_t cert_rejects = 0;
  // Ok reads that returned a (ts, value) binding no genuine write of this
  // runner produced — the no-fabricated-write invariant. Zero with honest
  // replicas; zero under liars too when cert verification and/or a masking
  // lie_tolerance filters them.
  std::uint64_t fabricated_reads = 0;
  // --- Epoch reconfiguration (zero without config.epochs) -----------------
  std::uint64_t epoch_transitions = 0;  // schedule entries applied
  std::uint64_t view_refreshes = 0;     // view fetches (retry + async)
  std::uint64_t epoch_rejects = 0;      // probes fenced by retired replicas
  // Ok reads that adopted state served by a retired replica — the
  // no-read-from-retired-server invariant; only the serve_while_retired bug
  // switch can make it positive.
  std::uint64_t retired_reads = 0;
  int current_epoch = 0;  // epoch in force at the last arrival
  int view_epoch = 0;     // the runner's adopted view (== current unless stale)

  // Virtual op latency (arrival to completion, microseconds) of every
  // decoded op, failures included; quantiles via latency_us.p50() etc.
  obs::HistogramSnapshot latency_us;

  // FNV-1a over the encoded reply stream — the bit-identity probe: equal
  // fingerprints mean byte-equal replies.
  std::uint64_t reply_fingerprint = 0;

  double virtual_duration = 0.0;  // last arrival, virtual seconds
  double wall_ms = 0.0;           // real time inside serve()

  std::uint64_t ops_ok() const { return reads_ok + writes_ok; }
  double availability() const {
    const std::uint64_t ops = reads + writes;
    return ops == 0 ? 0.0 : static_cast<double>(ops_ok()) / ops;
  }
  double wall_ops_per_sec() const {
    return wall_ms <= 0.0 ? 0.0 : static_cast<double>(requests) / (wall_ms / 1e3);
  }
};

// Bucket bounds of the op-latency histograms: 1 ms steps to 200 ms (the
// regime rate sweeps care about), power-of-two beyond (timeout pile-ups).
std::vector<std::uint64_t> service_latency_bounds();

class ServiceRunner {
 public:
  // The family fixes the server universe; config.validate(universe) must
  // hold (asserted). The runner owns transport, replicas, and one probe
  // strategy instance (solo-only, reset per op).
  ServiceRunner(const QuorumFamily& family, const ServiceConfig& config);
  ~ServiceRunner();

  ServiceRunner(const ServiceRunner&) = delete;
  ServiceRunner& operator=(const ServiceRunner&) = delete;

  // Serves an encoded request stream (total_ops records of kRequestWireSize
  // bytes, arrival-sorted — generate_load's output shape). Repeated calls
  // continue on the same world state, and the returned stats are lifetime
  // totals (wall_ms and reply_fingerprint cover the current call). If
  // `replies_out` is non-null it receives the encoded reply stream
  // (kReplyWireSize bytes per request).
  ServiceResult serve(const std::vector<std::uint8_t>& requests,
                      std::vector<std::uint8_t>* replies_out = nullptr);

  const ServiceConfig& config() const { return config_; }
  int num_servers() const { return static_cast<int>(replicas_.size()); }
  const ServiceReplica& replica(int i) const { return replicas_[i]; }

  // Windowed time-series over the served stream (enabled when
  // config.timeline_window_us > 0); lifetime of the runner, solo-owned.
  const obs::Timeline& timeline() const { return timeline_; }

 private:
  struct OpStats;
  void apply_faults_until(double now);
  void apply_epochs_until(double now);
  void pop_completed_writes(double now);
  Reply execute_op(const Request& req);

  ServiceConfig config_;
  Transport transport_;
  std::vector<ServiceReplica> replicas_;
  std::unique_ptr<ProbeStrategy> strategy_;
  Rng op_rng_base_;

  // Fault timeline, sorted by time; cursor advances with the arrivals.
  std::vector<FaultEvent> fault_timeline_;
  std::size_t next_fault_ = 0;

  // Epoch mode (config_.epochs != nullptr): one probe strategy per epoch's
  // family, an arrival-driven cursor like next_fault_, and the runner's own
  // (possibly stale) adopted view. All solo-owned.
  std::vector<std::unique_ptr<ProbeStrategy>> epoch_strategies_;
  int next_epoch_ = 1;
  int current_epoch_ = 0;
  int view_epoch_ = 0;

  // Register frontier: ok writes complete at a virtual finish time; a read
  // is judged stale against the max timestamp among writes completed before
  // its arrival.
  struct PendingWrite {
    double finish;
    Timestamp ts;
    bool operator>(const PendingWrite& other) const {
      return finish > other.finish;
    }
  };
  std::priority_queue<PendingWrite, std::vector<PendingWrite>,
                      std::greater<PendingWrite>>
      pending_writes_;
  Timestamp frontier_ts_;
  Timestamp max_acked_ts_;
  bool any_acked_write_ = false;
  double last_arrival_ = 0.0;

  // Solo-owned per-op scratch and lifetime totals. replies_ / touched_ are
  // indexed in FAMILY-INDEX space (== logical ids outside epoch mode); the
  // current view maps indices to logical replicas at every wire site.
  std::vector<std::optional<std::pair<Timestamp, std::uint64_t>>> replies_;
  std::vector<char> reply_retired_;  // reply came from a retired replica
  std::vector<int> touched_;
  struct Totals {
    std::uint64_t requests = 0, decode_failures = 0;
    std::uint64_t reads = 0, reads_ok = 0, writes = 0, writes_ok = 0;
    std::uint64_t stale_reads = 0, probes = 0, write_acks = 0;
    std::uint64_t cert_rejects = 0, fabricated_reads = 0;
    std::uint64_t epoch_transitions = 0, view_refreshes = 0;
    std::uint64_t epoch_rejects = 0, retired_reads = 0;
  } totals_;
  // (counter, writer, value) bindings of every ok write, solo-owned. The
  // solo stage runs in arrival order, so a read can only observe a binding
  // after its write registered it — the fabricated-read check is exact and
  // synchronous (no end-of-run pass like the sim harness needs).
  std::set<std::tuple<std::uint64_t, int, std::uint64_t>> genuine_writes_;

  // Solo-owned windowed series; disabled (window 0) unless configured.
  obs::Timeline timeline_;

  // Always-on local latency histogram (service_latency_bounds buckets), so
  // quantiles need no telemetry; snapshotted into ServiceResult.
  std::vector<std::uint64_t> lat_bounds_;
  std::vector<std::uint64_t> lat_counts_;
  std::uint64_t lat_count_ = 0, lat_sum_ = 0;
  std::uint64_t lat_min_ = ~0ull, lat_max_ = 0;
  void record_latency(std::uint64_t us);

  // Ticket state for the solo stage.
  std::mutex turn_mu_;
  std::condition_variable turn_cv_;
  std::uint64_t solo_turn_ = 0;
};

}  // namespace sqs
