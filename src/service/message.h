// Wire format of the replicated-register service.
//
// Requests and replies travel as fixed-size little-endian records so the
// staged runner can address request i at offset i * kRequestWireSize with no
// framing pass, and so the stateless stages have real work: the prologue
// decodes and checksum-verifies every request in parallel, the epilogue
// encodes and checksums every reply in parallel, while the ordered solo
// stage touches only decoded structs. The checksum is FNV-1a over the
// record with the checksum field zeroed — a stand-in for the signature
// verification a WAN deployment would hoist into the prologue (dsnet hoists
// exactly that into its stateless stage).

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/server.h"  // Timestamp

namespace sqs {

inline constexpr std::uint32_t kRequestMagic = 0x51525153u;  // "SQRQ"
inline constexpr std::uint32_t kReplyMagic = 0x50525153u;    // "SQRP"
inline constexpr std::size_t kRequestWireSize = 40;
inline constexpr std::size_t kReplyWireSize = 56;

enum class OpKind : std::uint8_t { kRead = 0, kWrite = 1 };

// A decoded register-operation request. `arrival_us` is the open-loop
// schedule's virtual arrival time in integer microseconds (the service's
// whole timeline is virtual; see runner.h).
struct Request {
  std::uint64_t seq = 0;
  std::uint64_t arrival_us = 0;
  std::uint64_t value = 0;
  std::uint32_t client = 0;
  OpKind kind = OpKind::kRead;
  bool valid = false;  // decoded and checksum-verified

  double arrival() const { return static_cast<double>(arrival_us) * 1e-6; }
};

// A decoded (or to-be-encoded) reply.
struct Reply {
  std::uint64_t seq = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t value = 0;
  Timestamp ts;
  std::uint32_t probes = 0;
  OpKind kind = OpKind::kRead;
  bool ok = false;
};

// FNV-1a over `size` bytes.
inline std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// Encoders write exactly kRequestWireSize / kReplyWireSize bytes at `out`.
void encode_request(const Request& req, std::uint8_t* out);
void encode_reply(const Reply& rep, std::uint8_t* out);

// Decoders verify magic + checksum; on failure the result's `valid` flag
// (request) or the return value (reply) says so and other fields are
// unspecified.
Request decode_request(const std::uint8_t* in);
bool decode_reply(const std::uint8_t* in, Reply* out);

}  // namespace sqs
