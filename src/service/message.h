// Wire format of the replicated-register service.
//
// Requests and replies travel as fixed-size little-endian records so the
// staged runner can address request i at offset i * kRequestWireSize with no
// framing pass, and so the stateless stages have real work: the prologue
// decodes and checksum-verifies every request in parallel, the epilogue
// encodes and checksums every reply in parallel, while the ordered solo
// stage touches only decoded structs. The checksum is FNV-1a over the
// record with the checksum field zeroed — a stand-in for the signature
// verification a WAN deployment would hoist into the prologue (dsnet hoists
// exactly that into its stateless stage).
//
// On top of the integrity checksum (anyone can recompute it) each record
// carries a keyed certificate — hmac32 under a per-principal key — modeling
// the unforgeable signatures of the Byzantine model: a request is signed by
// its client, a service reply by the service, and a replica's probe reply
// (ServiceReplica::ReadServed) by the replica *over its true stored state*.
// A Byzantine replica can corrupt the (ts, value) it reports but cannot
// forge a certificate for the fabricated contents, so cert verification in
// the runner strips lies off the quorum path before they can vote. The
// "HMAC" is a keyed-FNV stand-in with the same interface shape as the real
// thing; only unforgeability-in-model matters here, not cryptography.
//
// Reserved bytes are zero on encode AND enforced zero on decode, so a
// record with garbage padding is rejected even when its (public) checksum
// has been recomputed to match.

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/server.h"  // Timestamp

namespace sqs {

inline constexpr std::uint32_t kRequestMagic = 0x51525153u;  // "SQRQ"
inline constexpr std::uint32_t kReplyMagic = 0x50525153u;    // "SQRP"
inline constexpr std::size_t kRequestWireSize = 48;
inline constexpr std::size_t kReplyWireSize = 56;

// Principal id the service signs its replies under (clients are principals
// 0..num_clients-1, replicas kReplicaPrincipalBase + id).
inline constexpr std::uint64_t kServicePrincipal = 0xFFFFFFFFull;
inline constexpr std::uint64_t kReplicaPrincipalBase = 0x100000000ull;

enum class OpKind : std::uint8_t { kRead = 0, kWrite = 1 };

// A decoded register-operation request. `arrival_us` is the open-loop
// schedule's virtual arrival time in integer microseconds (the service's
// whole timeline is virtual; see runner.h).
struct Request {
  std::uint64_t seq = 0;
  std::uint64_t arrival_us = 0;
  std::uint64_t value = 0;
  std::uint32_t client = 0;
  std::uint32_t cert = 0;  // client certificate as carried on the wire
  OpKind kind = OpKind::kRead;
  bool valid = false;  // decoded and checksum-verified (cert NOT verified
                       // here — the runner's prologue does that, so an
                       // impersonated request is observable as a cert
                       // reject rather than a generic decode failure)

  double arrival() const { return static_cast<double>(arrival_us) * 1e-6; }
};

// A decoded (or to-be-encoded) reply.
struct Reply {
  std::uint64_t seq = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t value = 0;
  Timestamp ts;
  std::uint32_t probes = 0;
  std::uint32_t cert = 0;  // service certificate (filled by decode; encode
                           // computes it fresh from the record contents)
  OpKind kind = OpKind::kRead;
  bool ok = false;
};

// FNV-1a over `size` bytes.
inline std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

// Keyed-FNV "HMAC" stand-in: absorbs the key, the data, then the key again
// (the sandwich shape of the real construction). Unforgeable in-model
// because lying code paths never call it with another principal's key.
inline std::uint32_t hmac32(std::uint64_t key, const std::uint8_t* data,
                            std::size_t n) {
  std::uint32_t h = 2166136261u;
  const auto absorb_key = [&h, key] {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(key >> (8 * i));
      h *= 16777619u;
    }
  };
  absorb_key();
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  absorb_key();
  return h;
}

// Per-principal signing key (a splitmix-style mix of the principal id with
// a baked-in secret — the model's stand-in for a key distribution scheme).
inline std::uint64_t cert_key(std::uint64_t principal) {
  std::uint64_t x = principal ^ 0xC2B2AE3D27D4EB4Full;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

// The certificate a well-behaved client attaches to a request: signs the
// semantic fields (seq, arrival_us, client, kind, value) under the client's
// key. encode_request computes and embeds it; the runner's prologue
// recomputes it from the decoded fields and rejects mismatches.
std::uint32_t request_cert(const Request& req);

// The certificate a replica attaches to a probe reply: signs the reported
// (ts, value) under the replica's key. ServiceReplica computes it over its
// TRUE stored state even while lying — a Byzantine replica can corrupt what
// it reports but cannot sign the fabrication.
std::uint32_t replica_cert(int replica, const Timestamp& ts,
                           std::uint64_t value);

// Encoders write exactly kRequestWireSize / kReplyWireSize bytes at `out`.
// encode_request signs with the request's client key; encode_reply signs
// with the service key. Both certificates are recomputed from the record
// contents (the structs' cert fields are outputs of decode, not inputs).
void encode_request(const Request& req, std::uint8_t* out);
void encode_reply(const Reply& rep, std::uint8_t* out);

// Decoders verify magic + checksum + kind range + zero reserved bytes; the
// reply decoder additionally verifies the service certificate. On failure
// the result's `valid` flag (request) or the return value (reply) says so
// and other fields are unspecified. Request certs are intentionally NOT
// verified here (see Request::valid).
Request decode_request(const std::uint8_t* in);
bool decode_reply(const std::uint8_t* in, Reply* out);

}  // namespace sqs
