// Explicit-time replica for the staged register service.
//
// Mirrors SimServer's failure model — exponentially flapping up/down periods
// (stationary unavailability mean_down / (mean_up + mean_down)), forced
// crash/up windows, gray slowdowns, optional amnesia on recovery — but takes
// the caller's `now` on every call instead of reading a simulator clock, and
// adds what a served workload needs that a closed-loop simulation did not:
// a single-server FIFO queue. Queueing is accounted on the *op-arrival*
// clock `qnow` (monotone across the served stream): the backlog starts at
// max(qnow, busy_until), runs one service_time, and the induced wait is
// added to the reply's completion. Charging the queue on the monotone
// arrival clock rather than the probe-delivery time keeps the backlog a
// stable M/G/1-style process — probe timelines extend past later arrivals
// (sequential probing plus timeouts), and feeding those late times back
// into busy_until would let one slow op inflate the next op's queue wait,
// a feedback loop that collapses the service far below its real capacity.
// This way per-replica utilization turns into queueing delay and the
// latency curve rises toward saturation instead of staying flat (the load
// half of the paper's availability/load trade-off, measured not asserted).
//
// Same invariant evidence as SimServer: max_timestamp_seen survives amnesia
// wipes, ts_regressions counts reads served below that high-water mark,
// dropped_requests counts arrivals while down.
//
// Like Transport, the failure process advances lazily and only forward; the
// runner guarantees that by evaluating operations in arrival order.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/server.h"  // Timestamp, ServerConfig
#include "util/rng.h"

namespace sqs {

class ServiceReplica {
 public:
  ServiceReplica(int id, const ServerConfig& config, Rng rng);

  int id() const { return id_; }

  // True if the replica is up at `now` (forced windows override the
  // stochastic process; crash wins when both are active).
  bool up(double now) const;

  struct ReadServed {
    double done = 0.0;  // completion time (queueing + service included)
    Timestamp ts;
    std::uint64_t value = 0;
    // Replica certificate over the replica's TRUE stored (ts, value) — see
    // service/message.h replica_cert. While lying, ts/value above may be
    // fabricated but the cert still signs the genuine state (signatures are
    // unforgeable in-model), so a verifying runner catches the mismatch.
    std::uint32_t cert = 0;
  };

  // A read/probe of `object` delivered at `now`, issued by an op that
  // arrived at `qnow` (<= now, monotone across ops): nullopt if the replica
  // is down (request dropped), otherwise the register contents and the
  // time the reply leaves the replica (now + queue wait + service time).
  // `client` feeds the equivocation lie mode (lies only to odd clients).
  std::optional<ReadServed> serve_read(int object, double now, double qnow,
                                       int client = -1);

  // A write delivered at `now` from an op that arrived at `qnow`: applies
  // (ts, value) if ts advances the register, acks either way; nullopt if
  // down. Returns the time the ack leaves the replica. Under the
  // fabricate-ack lie the ack is returned but the state is dropped.
  std::optional<double> serve_write(const Timestamp& ts, std::uint64_t value,
                                    int object, double now, double qnow);

  // Fault hooks, windows measured from `now` (same semantics as SimServer:
  // extend-never-shorten per kind, crash beats forced-up, gray replaces).
  void force_crash(double now, double duration);
  void force_up(double now, double duration);
  void set_gray(double factor, double now, double duration);
  // Byzantine lie window (replace semantics, like set_gray): replies over
  // [now, now + duration) are corrupted per sim/server.h's LieMode.
  void set_lie(LieMode mode, double now, double duration);
  bool lie_active(double now) const {
    return lie_mode_ != LieMode::kNone && now < lie_until_;
  }
  std::uint64_t lies_told() const { return lies_told_; }

  double service_time(double now) const {
    return config_.service_time * (now < gray_until_ ? gray_factor_ : 1.0);
  }

  // --- Epoch membership (reconfiguration, src/core/epoch.h) ---------------
  // Same contract as SimServer: membership and the epoch stamp are flipped
  // only by the runner's epoch cursor (solo stage, arrival-ordered), so
  // neither touches any rng stream. A retired replica fences requests with
  // an epoch rejection unless the serve_while_retired bug switch is on.
  void set_member(bool member) { retired_ = !member; }
  bool retired() const { return retired_; }
  void set_epoch(int epoch) { epoch_ = epoch; }
  int epoch() const { return epoch_; }
  bool fences_requests() const {
    return retired_ && !config_.serve_while_retired;
  }

  // Epoch fence: a retired replica answers — at normal queueing cost — with
  // a rejection carrying its epoch instead of register state; nullopt if
  // down (a fence is an answer, so it queues like one).
  std::optional<double> serve_fence(double now, double qnow);

  // State transfer at an epoch boundary (join-sync / drain-on-leave):
  // adopts (ts, value) if it advances the cell. Applied directly by the
  // runner's transition cursor — instantaneous, draws no randomness, and
  // works even while the destination is down (the transfer is modeled as
  // completing on recovery).
  void adopt_state(const Timestamp& ts, std::uint64_t value, int object = 0);

  Timestamp timestamp(int object = 0) const;
  std::uint64_t value(int object = 0) const;
  Timestamp max_timestamp_seen(int object = 0) const;
  std::uint64_t ts_regressions() const { return ts_regressions_; }
  std::uint64_t dropped_requests() const { return dropped_requests_; }
  // Total seconds of service time performed — utilization evidence for the
  // load report (busy fraction = busy_seconds / elapsed virtual time).
  double busy_seconds() const { return busy_seconds_; }
  // Queue backlog (seconds of queued work) as seen at time `now`; feeds the
  // timeline's queue_max_us series.
  double backlog(double now) const {
    return busy_until_ > now ? busy_until_ - now : 0.0;
  }

 private:
  void advance_failure_process(double now) const;
  // Returns the queue wait + service span to add after `now`; advances the
  // backlog on the monotone `qnow` clock.
  double begin_service(double now, double qnow);

  int id_;
  ServerConfig config_;
  mutable Rng rng_;
  mutable bool up_ = true;
  mutable double next_toggle_ = 0.0;
  double forced_down_until_ = 0.0;
  double forced_up_until_ = 0.0;
  double gray_factor_ = 1.0;
  double gray_until_ = 0.0;
  bool retired_ = false;
  int epoch_ = 0;
  LieMode lie_mode_ = LieMode::kNone;
  double lie_until_ = 0.0;
  double busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint64_t ts_regressions_ = 0;
  std::uint64_t dropped_requests_ = 0;
  std::uint64_t lies_told_ = 0;

  struct Cell {
    Timestamp ts;
    std::uint64_t value = 0;
  };
  mutable std::unordered_map<int, Cell> objects_;
  std::unordered_map<int, Timestamp> max_ts_seen_;
};

}  // namespace sqs
