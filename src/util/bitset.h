// Fixed-width dynamic bitset used to represent sets of servers.
//
// std::vector<bool> is too slow for the hot paths (pairwise quorum checks,
// Monte Carlo availability) and std::bitset fixes the width at compile time;
// quorum universes in this library are sized at run time, so we roll a small
// word-packed bitset with the set-algebra operations the quorum code needs.

#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sqs {

class Bitset {
 public:
  Bitset() = default;

  // A bitset over `size` positions, all clear.
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + kBits - 1) / kBits, 0) {}

  static Bitset all_set(std::size_t size) {
    Bitset b(size);
    for (std::size_t i = 0; i < b.words_.size(); ++i) b.words_[i] = ~0ull;
    b.trim();
    return b;
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i / kBits] >> (i % kBits)) & 1u;
  }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i / kBits] |= (1ull << (i % kBits));
  }

  void reset(std::size_t i) {
    assert(i < size_);
    words_[i / kBits] &= ~(1ull << (i % kBits));
  }

  void assign(std::size_t i, bool value) {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  // Re-targets the bitset to `size` positions, all clear, reusing the word
  // storage (vector::assign keeps capacity). Observably identical to
  // assigning a fresh Bitset(size) — the reuse primitive behind the scratch
  // arenas (src/runtime/scratch.h).
  void reshape(std::size_t size) {
    size_ = size;
    words_.assign((size + kBits - 1) / kBits, 0);
  }

  // reshape(size) followed by loading the low n bits of `mask`; the in-place
  // equivalent of from_mask (n <= 64).
  void assign_mask(std::uint64_t mask, std::size_t size) {
    assert(size <= kBits);
    reshape(size);
    if (!words_.empty()) words_[0] = mask;
    trim();
  }

  // Word-granular access for the SoA batch kernels (src/core/batch.h): a
  // lane word holds bits [w*64, w*64+64) of the set. num_words() covers the
  // ragged tail — a width-65 set has two words, the second with one live bit.
  std::size_t num_words() const { return words_.size(); }

  std::uint64_t word(std::size_t w) const {
    assert(w < words_.size());
    return words_[w];
  }

  // Stores a full lane word; bits beyond size() are cleared so count()/==
  // stay exact (the width-0/64/65/128 boundary cases are regression-tested
  // in tests/test_bitset.cpp).
  void set_word(std::size_t w, std::uint64_t value) {
    assert(w < words_.size());
    words_[w] = value;
    if (w + 1 == words_.size()) trim();
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  bool none() const { return !any(); }

  bool intersects(const Bitset& other) const {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  std::size_t intersection_count(const Bitset& other) const {
    assert(size_ == other.size_);
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      c += static_cast<std::size_t>(
          __builtin_popcountll(words_[i] & other.words_[i]));
    return c;
  }

  bool is_subset_of(const Bitset& other) const {
    assert(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  Bitset operator&(const Bitset& other) const {
    assert(size_ == other.size_);
    Bitset r(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      r.words_[i] = words_[i] & other.words_[i];
    return r;
  }

  Bitset operator|(const Bitset& other) const {
    assert(size_ == other.size_);
    Bitset r(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      r.words_[i] = words_[i] | other.words_[i];
    return r;
  }

  Bitset operator~() const {
    Bitset r(size_);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
    r.trim();
    return r;
  }

  Bitset minus(const Bitset& other) const {
    assert(size_ == other.size_);
    Bitset r(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      r.words_[i] = words_[i] & ~other.words_[i];
    return r;
  }

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  // Total order usable as a std::map/std::set key.
  bool operator<(const Bitset& other) const {
    if (size_ != other.size_) return size_ < other.size_;
    return words_ < other.words_;
  }

  // Calls fn(i) for each set bit i, in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * kBits + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for_each([&](std::size_t i) { out.push_back(i); });
    return out;
  }

  // Low n bits taken from `mask` (n <= 64); handy for exhaustive enumeration.
  static Bitset from_mask(std::uint64_t mask, std::size_t size) {
    assert(size <= kBits);
    Bitset b(size);
    if (!b.words_.empty()) b.words_[0] = mask;
    b.trim();
    return b;
  }

  std::uint64_t to_mask() const {
    assert(size_ <= kBits);
    return words_.empty() ? 0 : words_[0];
  }

  std::size_t hash() const {
    std::size_t h = std::hash<std::size_t>{}(size_);
    for (auto w : words_) h = h * 1099511628211ull + std::hash<std::uint64_t>{}(w);
    return h;
  }

  // "{0,3,5}" style rendering for diagnostics.
  std::string to_string() const {
    std::string out = "{";
    bool first = true;
    for_each([&](std::size_t i) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    });
    out += "}";
    return out;
  }

 private:
  static constexpr std::size_t kBits = 64;

  // Clears bits beyond size_ so count()/== stay exact after ~ or all_set.
  void trim() {
    const std::size_t extra = words_.size() * kBits - size_;
    if (extra > 0 && !words_.empty())
      words_.back() &= (~0ull >> extra);
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3): bit (r, c) of
// the input — bit c of m[r] — moves to bit (c, r). This is the primitive
// behind the draw-order-preserving row→column flip of WorldBatch sampling:
// rows are per-trial server masks drawn in scalar order, columns are the
// per-server trial lanes the batch kernels consume.
inline void transpose_64x64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000ffffffffull;
  for (std::size_t shift = 32; shift != 0; shift >>= 1) {
    for (std::size_t r = 0; r < 64; r = (r + shift + 1) & ~shift) {
      const std::uint64_t t = ((m[r] >> shift) ^ m[r + shift]) & mask;
      m[r] ^= t << shift;
      m[r + shift] ^= t;
    }
    mask ^= mask << (shift >> 1);
  }
}

}  // namespace sqs
