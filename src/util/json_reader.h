// Minimal strict JSON reader — the counterpart to JsonWriter.
//
// The scenario loader replays ChaosScenario/FaultPlan/ChurnPlan files without
// recompiling, so parse errors must be precise and loud: every value carries
// the line/column where it started, duplicate object keys and trailing
// garbage are rejected at parse time, and numbers keep their raw lexeme so
// integer fields (seeds) round-trip exactly through uint64 instead of
// detouring through a double.
//
// Deliberately NOT a general-purpose JSON library: no comments, no NaN/Inf,
// no \u surrogate pairs beyond the BMP, objects keep insertion order.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sqs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  // Raw lexeme of a number, e.g. "18446744073709551615" — used to recover
  // exact unsigned 64-bit integers that do not survive a double.
  std::string number_raw;
  std::string string;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject
  // 1-based position of the first character of this value in the input.
  int line = 1;
  int col = 1;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  const char* kind_name() const;

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  // Strict integer extraction from the raw lexeme: fails on fractions,
  // exponents, negatives (for u64), and out-of-range values.
  bool as_u64(std::uint64_t* out) const;
  bool as_i64(std::int64_t* out) const;
  bool as_int(int* out) const;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  // "line L, col C: message" when !ok
  int line = 0;
  int col = 0;
};

// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonParseResult parse_json(std::string_view text);

// Reads `path` and parses it. On failure `*error` is set to
// "<path>:<line>:<col>: message" (or "<path>: message" for I/O errors).
bool load_json_file(const std::string& path, JsonValue* out,
                    std::string* error);

}  // namespace sqs
