#include "util/binomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sqs {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double log_choose(int n, int k) {
  if (k < 0 || k > n) return kNegInf;
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double choose(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  return std::exp(log_choose(n, k));
}

double log_add(double lx, double ly) {
  if (lx == kNegInf) return ly;
  if (ly == kNegInf) return lx;
  const double hi = std::max(lx, ly);
  const double lo = std::min(lx, ly);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_binom_pmf(int n, int k, double q) {
  if (k < 0 || k > n) return kNegInf;
  if (q <= 0.0) return k == 0 ? 0.0 : kNegInf;
  if (q >= 1.0) return k == n ? 0.0 : kNegInf;
  return log_choose(n, k) + k * std::log(q) + (n - k) * std::log1p(-q);
}

double binom_tail_geq(int n, int k, double q) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  double acc = kNegInf;
  for (int i = k; i <= n; ++i) acc = log_add(acc, log_binom_pmf(n, i, q));
  return std::exp(acc);
}

double binom_tail_leq(int n, int k, double q) {
  if (k >= n) return 1.0;
  if (k < 0) return 0.0;
  double acc = kNegInf;
  for (int i = 0; i <= k; ++i) acc = log_add(acc, log_binom_pmf(n, i, q));
  return std::exp(acc);
}

double binom_pmf(int n, int k, double q) {
  return std::exp(log_binom_pmf(n, k, q));
}

std::vector<double> binom_pmf_vector(int n, double q) {
  std::vector<double> pmf(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) pmf[static_cast<std::size_t>(k)] = binom_pmf(n, k, q);
  return pmf;
}

}  // namespace sqs
