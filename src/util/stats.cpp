#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace sqs {

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {
constexpr double kZ95 = 1.959963984540054;

double wilson_bound(std::size_t successes, std::size_t trials, bool upper) {
  if (trials == 0) return upper ? 1.0 : 0.0;
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = phat + z2 / (2.0 * n);
  const double spread =
      kZ95 * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  const double value = (center + (upper ? spread : -spread)) / denom;
  return std::clamp(value, 0.0, 1.0);
}
}  // namespace

double Proportion::wilson_low() const {
  return wilson_bound(successes, trials, /*upper=*/false);
}

double Proportion::wilson_high() const {
  return wilson_bound(successes, trials, /*upper=*/true);
}

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(pct, 0.0, 100.0) / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace sqs
