#include "util/rng.h"

#include <cmath>

namespace sqs {

double Rng::exponential(double rate) {
  // Avoid log(0) by mapping the (measure-zero) draw 0 to the next float up.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

int Rng::binomial(int n, double q) {
  // Direct summation: n is small (server counts) everywhere we call this.
  int successes = 0;
  for (int i = 0; i < n; ++i)
    if (bernoulli(q)) ++successes;
  return successes;
}

}  // namespace sqs
