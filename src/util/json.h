// Minimal streaming JSON writer for machine-readable bench output.
//
// The bench drivers emit BENCH_*.json files (name, params, trials, wall-ms,
// threads) so the perf trajectory of the repo can be tracked across PRs
// without scraping the human-readable tables. The writer covers exactly the
// subset those files need: nested objects/arrays, string/number/bool/null
// scalars, correct escaping, deterministic number formatting.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sqs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Must precede the value inside an object scope.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(bool b);
  JsonWriter& null();

  // key + value in one call, the common case for flat records.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }

  // Writes str() (plus a trailing newline) to `path`; false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  void separator();

  std::string out_;
  // One entry per open scope: true once the scope has emitted an element
  // (so the next one needs a comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace sqs
