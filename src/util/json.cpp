#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sqs {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted "name": for this value
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  append_escaped(out_, name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separator();
  append_escaped(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separator();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  separator();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  separator();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separator();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  out_ += "null";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[json] cannot open %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const std::size_t written = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = written == out_.size() && std::fputc('\n', f) != EOF;
  if (!ok)
    std::fprintf(stderr, "[json] short write to %s: %s\n", path.c_str(),
                 std::strerror(errno));
  const bool closed = std::fclose(f) == 0;
  if (!closed)
    std::fprintf(stderr, "[json] cannot close %s: %s\n", path.c_str(),
                 std::strerror(errno));
  return closed && ok;
}

}  // namespace sqs
