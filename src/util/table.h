// Plain-text table renderer used by every bench binary so reproduced tables
// and figure series print in a uniform, diff-friendly format.

#pragma once

#include <string>
#include <vector>

namespace sqs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells are
  // rendered empty.
  void add_row(std::vector<std::string> cells);

  // Renders with column alignment and a header rule.
  std::string to_string() const;

  // Convenience: renders and writes to stdout with a title line.
  void print(const std::string& title) const;

  static std::string fmt(double value, int precision = 4);
  static std::string fmt_sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sqs
