#include "util/json_reader.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace sqs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    skip_ws();
    if (!parse_value(&r.value, &r)) return r;
    skip_ws();
    if (pos_ < text_.size()) {
      fail(&r, "trailing characters after JSON document");
      return r;
    }
    r.ok = true;
    return r;
  }

 private:
  bool parse_value(JsonValue* out, JsonParseResult* r) {
    if (pos_ >= text_.size()) return fail(r, "unexpected end of input");
    out->line = line_;
    out->col = col_;
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, r);
      case '[':
        return parse_array(out, r);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string, r);
      case 't':
        if (!expect_word("true", r)) return false;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!expect_word("false", r)) return false;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!expect_word("null", r)) return false;
        out->kind = JsonValue::Kind::kNull;
        return true;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out, r);
        return fail(r, std::string("unexpected character '") + c + "'");
    }
  }

  bool parse_object(JsonValue* out, JsonParseResult* r) {
    out->kind = JsonValue::Kind::kObject;
    advance();  // '{'
    skip_ws();
    if (peek_is('}')) {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail(r, "expected '\"' to start object key");
      const int key_line = line_;
      const int key_col = col_;
      std::string key;
      if (!parse_string(&key, r)) return false;
      for (const auto& m : out->members)
        if (m.first == key)
          return fail(r, "duplicate key \"" + key + "\"", key_line, key_col);
      skip_ws();
      if (!peek_is(':')) return fail(r, "expected ':' after object key");
      advance();
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, r)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek_is(',')) {
        advance();
        continue;
      }
      if (peek_is('}')) {
        advance();
        return true;
      }
      return fail(r, "expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, JsonParseResult* r) {
    out->kind = JsonValue::Kind::kArray;
    advance();  // '['
    skip_ws();
    if (peek_is(']')) {
      advance();
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v, r)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (peek_is(',')) {
        advance();
        continue;
      }
      if (peek_is(']')) {
        advance();
        return true;
      }
      return fail(r, "expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out, JsonParseResult* r) {
    advance();  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail(r, "unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        advance();
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail(r, "unescaped control character in string");
      if (c != '\\') {
        out->push_back(c);
        advance();
        continue;
      }
      advance();  // backslash
      if (pos_ >= text_.size()) return fail(r, "unterminated escape");
      const char e = text_[pos_];
      advance();
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return fail(r, "truncated \\u escape");
            const char h = text_[pos_];
            advance();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(r, "invalid hex digit in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF)
            return fail(r, "surrogate \\u escapes are not supported");
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail(r, std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  bool parse_number(JsonValue* out, JsonParseResult* r) {
    out->kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (peek_is('-')) advance();
    if (pos_ >= text_.size() || !is_digit(text_[pos_]))
      return fail(r, "malformed number");
    if (text_[pos_] == '0') {
      advance();
      if (pos_ < text_.size() && is_digit(text_[pos_]))
        return fail(r, "numbers may not have leading zeros");
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) advance();
    }
    if (peek_is('.')) {
      advance();
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail(r, "expected digits after decimal point");
      while (pos_ < text_.size() && is_digit(text_[pos_])) advance();
    }
    if (peek_is('e') || peek_is('E')) {
      advance();
      if (peek_is('+') || peek_is('-')) advance();
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        return fail(r, "expected digits in exponent");
      while (pos_ < text_.size() && is_digit(text_[pos_])) advance();
    }
    out->number_raw.assign(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out->number = std::strtod(out->number_raw.c_str(), &end);
    if (end != out->number_raw.c_str() + out->number_raw.size() || errno == ERANGE)
      return fail(r, "number out of range");
    return true;
  }

  bool expect_word(const char* word, JsonParseResult* r) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        return fail(r, std::string("invalid literal (expected \"") + word + "\")");
      advance();
    }
    return true;
  }

  static bool is_digit(char c) { return c >= '0' && c <= '9'; }

  bool peek_is(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      advance();
    }
  }

  bool fail(JsonParseResult* r, const std::string& message) {
    return fail(r, message, line_, col_);
  }

  bool fail(JsonParseResult* r, const std::string& message, int line, int col) {
    // Keep the first error; later frames unwinding must not overwrite it.
    if (r->error.empty()) {
      r->line = line;
      r->col = col;
      r->error = "line " + std::to_string(line) + ", col " +
                 std::to_string(col) + ": " + message;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& m : members)
    if (m.first == key) return &m.second;
  return nullptr;
}

bool JsonValue::as_u64(std::uint64_t* out) const {
  if (kind != Kind::kNumber || number_raw.empty()) return false;
  for (const char c : number_raw)
    if (c < '0' || c > '9') return false;  // no sign, fraction, or exponent
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(number_raw.c_str(), &end, 10);
  if (errno == ERANGE || end != number_raw.c_str() + number_raw.size())
    return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool JsonValue::as_i64(std::int64_t* out) const {
  if (kind != Kind::kNumber || number_raw.empty()) return false;
  std::size_t i = number_raw[0] == '-' ? 1 : 0;
  if (i >= number_raw.size()) return false;
  for (; i < number_raw.size(); ++i)
    if (number_raw[i] < '0' || number_raw[i] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(number_raw.c_str(), &end, 10);
  if (errno == ERANGE || end != number_raw.c_str() + number_raw.size())
    return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool JsonValue::as_int(int* out) const {
  std::int64_t v = 0;
  if (!as_i64(&v)) return false;
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    return false;
  *out = static_cast<int>(v);
  return true;
}

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

bool load_json_file(const std::string& path, JsonValue* out,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open file";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParseResult r = parse_json(text);
  if (!r.ok) {
    if (error != nullptr)
      *error = path + ":" + std::to_string(r.line) + ":" +
               std::to_string(r.col) + ": " + r.error.substr(r.error.find(": ") + 2);
    return false;
  }
  *out = std::move(r.value);
  return true;
}

}  // namespace sqs
