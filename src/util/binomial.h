// Exact-as-possible binomial arithmetic in log space.
//
// Availability formulas in the paper are binomial tail sums such as
// sum_{i=alpha}^{n} C(n,i) (1-p)^i p^(n-i); for n in the thousands the
// individual terms underflow doubles, so everything is computed via
// lgamma-based log terms and stable log-sum-exp accumulation.

#pragma once

#include <vector>

namespace sqs {

// log C(n, k); returns -inf for k outside [0, n].
double log_choose(int n, int k);

// C(n, k) as a double (may overflow to +inf for huge n; callers that need
// exactness use log_choose).
double choose(int n, int k);

// log( x + y ) given lx = log x, ly = log y; handles -inf operands.
double log_add(double lx, double ly);

// log of the binomial pmf: C(n,k) q^k (1-q)^(n-k).
double log_binom_pmf(int n, int k, double q);

// P[Bin(n, q) >= k]  (upper tail, inclusive).
double binom_tail_geq(int n, int k, double q);

// P[Bin(n, q) <= k]  (lower tail, inclusive).
double binom_tail_leq(int n, int k, double q);

// P[Bin(n, q) = k].
double binom_pmf(int n, int k, double q);

// The full pmf vector P[Bin(n,q) = 0..n], computed once.
std::vector<double> binom_pmf_vector(int n, double q);

}  // namespace sqs
