#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace sqs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::string rendered = to_string();
  std::fprintf(stdout, "\n== %s ==\n%s", title.c_str(), rendered.c_str());
  std::fflush(stdout);
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

}  // namespace sqs
