// Small statistics helpers shared by the benches and the simulator.

#pragma once

#include <cstddef>
#include <vector>

namespace sqs {

// Online mean/variance accumulator (Welford). Cheap enough to keep per-server
// in the load benches.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  // Folds another accumulator in (Chan et al.'s pairwise update). Used by
  // the parallel trial runtime to reduce per-chunk statistics in chunk
  // order, which keeps the combined value deterministic for any thread
  // count (though not bit-equal to one long sequence of add() calls).
  void merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * (nb / (na + nb));
    m2_ += other.m2_ + delta * delta * (na * nb / (na + nb));
    count_ += other.count_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  // Half-width of the normal-approximation 95% confidence interval.
  double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Bernoulli proportion estimate with a 95% Wilson interval; used for
// availability and non-intersection probabilities where counts can be tiny.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  void add(bool success) {
    ++trials;
    if (success) ++successes;
  }
  void merge(const Proportion& other) {
    successes += other.successes;
    trials += other.trials;
  }
  double estimate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(trials);
  }
  double wilson_low() const;
  double wilson_high() const;
};

// Percentile of a sample (linear interpolation); sorts a copy.
double percentile(std::vector<double> values, double pct);

}  // namespace sqs
