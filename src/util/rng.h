// Deterministic, splittable random number generation.
//
// Every Monte Carlo estimate in this repository is seeded explicitly so that
// tests and benches are reproducible run to run. xoshiro256** is used for its
// speed (the probe-engine hot loops draw one variate per server probe) and
// statistical quality; splitmix64 expands user seeds into full state.

#pragma once

#include <cstdint>
#include <string_view>

namespace sqs {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedull) { reseed(seed); }

  // Derives an independent stream for a named sub-experiment. Streams
  // derived with different labels (or from different parents) are
  // statistically independent for all practical purposes.
  Rng split(std::string_view label) const {
    std::uint64_t h = 1469598103934665603ull;
    for (char c : label) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    std::uint64_t mix = s_[0] ^ (s_[3] * 0x9e3779b97f4a7c15ull);
    return Rng(h ^ mix);
  }

  Rng split(std::uint64_t index) const {
    std::uint64_t mix = s_[1] ^ (s_[2] * 0xda942042e4dd58b5ull);
    return Rng(mix + 0x9e3779b97f4a7c15ull * (index + 1));
  }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double prob) { return next_double() < prob; }

  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless bounded sampling.
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Exponentially distributed with the given rate (mean 1/rate).
  double exponential(double rate);

  // Number of successes out of n independent trials with success prob q.
  int binomial(int n, double q);

  // UniformRandomBitGenerator interface, so std::shuffle etc. work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace sqs
