#include "core/epoch.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "core/probe_strategy.h"
#include "core/signed_set.h"
#include "util/rng.h"

namespace sqs {

bool MembershipView::contains(int logical) const {
  return index_of(logical) >= 0;
}

int MembershipView::index_of(int logical) const {
  for (std::size_t i = 0; i < members.size(); ++i)
    if (members[i] == logical) return static_cast<int>(i);
  return -1;
}

int EpochedFamily::epoch_at(double t) const {
  int e = 0;
  for (std::size_t i = 1; i < epochs.size(); ++i)
    if (epochs[i].at <= t) e = static_cast<int>(i);
  return e;
}

bool EpochedFamily::validate() const {
  const auto complain = [](const char* what) {
    std::fprintf(stderr, "EpochedFamily: %s\n", what);
    return false;
  };
  if (epochs.empty()) return complain("schedule has no epochs");
  if (num_logical <= 0) return complain("num_logical must be positive");
  if (epochs.front().at != 0.0) return complain("epoch 0 must start at t=0");
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const EpochEntry& entry = epochs[e];
    if (entry.view.epoch != static_cast<int>(e))
      return complain("view.epoch must equal its schedule index");
    if (e > 0 && !(entry.at > epochs[e - 1].at))
      return complain("transition times must be strictly increasing");
    if (entry.family == nullptr) return complain("epoch has no family");
    if (entry.family->universe_size() != entry.view.universe_size())
      return complain("family universe does not match view size");
    if (entry.view.members.empty()) return complain("epoch has no members");
    std::vector<int> seen = entry.view.members;
    std::sort(seen.begin(), seen.end());
    if (seen.front() < 0 || seen.back() >= num_logical)
      return complain("logical id out of range [0, num_logical)");
    if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
      return complain("duplicate logical id within a view");
  }
  return true;
}

namespace {

// Logical-id bit masks as word vectors so num_logical is not capped at 64.
using LogicalMask = std::vector<std::uint64_t>;

LogicalMask make_mask(int num_logical) {
  return LogicalMask(static_cast<std::size_t>((num_logical + 63) / 64), 0);
}

void mask_set(LogicalMask& m, int bit) {
  m[static_cast<std::size_t>(bit) / 64] |= 1ull << (static_cast<std::size_t>(bit) % 64);
}

bool masks_intersect(const LogicalMask& a, const LogicalMask& b) {
  for (std::size_t w = 0; w < a.size(); ++w)
    if ((a[w] & b[w]) != 0) return true;
  return false;
}

// Minimal accepting configurations of a strict family = its minimal quorums,
// as family-index bit masks. Any quorum contains a minimal one, so pairwise
// intersection over this set certifies intersection over all quorum pairs.
std::vector<std::uint64_t> minimal_quorum_masks(const QuorumFamily& f) {
  const int n = f.universe_size();
  std::vector<std::uint64_t> minimal;
  Configuration config(n, 0);
  const std::uint64_t limit = 1ull << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    config.assign_mask(n, mask);
    if (!f.accepts(config)) continue;
    bool is_minimal = true;
    for (int i = 0; i < n && is_minimal; ++i) {
      if ((mask & (1ull << i)) == 0) continue;
      config.assign_mask(n, mask & ~(1ull << i));
      if (f.accepts(config)) is_minimal = false;
    }
    if (is_minimal) minimal.push_back(mask);
  }
  return minimal;
}

LogicalMask to_logical(std::uint64_t family_mask, const MembershipView& view,
                       int num_logical) {
  LogicalMask m = make_mask(num_logical);
  for (int i = 0; i < view.universe_size(); ++i)
    if ((family_mask & (1ull << i)) != 0) mask_set(m, view.members[i]);
  return m;
}

// Runs one probe acquisition of `f` against a logical up/down world; returns
// the acquired quorum's positive part mapped to logical ids, or nullopt.
std::optional<LogicalMask> acquire_logical(const QuorumFamily& f,
                                           const MembershipView& view,
                                           const std::vector<char>& up,
                                           int num_logical, Rng* rng) {
  const std::unique_ptr<ProbeStrategy> strategy = f.make_probe_strategy();
  strategy->reset(rng);
  // Bounded by the engine contract (no server probed twice), but guard
  // against a misbehaving strategy anyway.
  int steps = 4 * f.universe_size() + 8;
  while (strategy->status() == ProbeStatus::kInProgress && steps-- > 0) {
    const int i = strategy->next_server();
    strategy->observe(i, up[static_cast<std::size_t>(view.members[i])] != 0);
  }
  if (strategy->status() != ProbeStatus::kAcquired) return std::nullopt;
  const SignedSet quorum = strategy->acquired_quorum();
  LogicalMask m = make_mask(num_logical);
  for (int i = 0; i < view.universe_size(); ++i)
    if (quorum.positive().test(static_cast<std::size_t>(i)))
      mask_set(m, view.members[i]);
  return m;
}

}  // namespace

CrossEpochCheck check_cross_epoch_intersection(const EpochEntry& older,
                                               const EpochEntry& newer,
                                               int num_logical, double p,
                                               std::uint64_t mc_trials,
                                               std::uint64_t seed) {
  CrossEpochCheck out;
  const QuorumFamily& fa = *older.family;
  const QuorumFamily& fb = *newer.family;

  // Exact path: both strict (all-positive quorums, monotone acceptance) and
  // small enough to enumerate 2^n configurations per side.
  if (fa.is_strict() && fb.is_strict() && fa.universe_size() <= 16 &&
      fb.universe_size() <= 16) {
    const std::vector<std::uint64_t> qa = minimal_quorum_masks(fa);
    const std::vector<std::uint64_t> qb = minimal_quorum_masks(fb);
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(qa.size()) * qb.size();
    if (pairs > 0 && pairs <= 5'000'000ull) {
      std::vector<LogicalMask> la, lb;
      la.reserve(qa.size());
      lb.reserve(qb.size());
      for (const std::uint64_t m : qa)
        la.push_back(to_logical(m, older.view, num_logical));
      for (const std::uint64_t m : qb)
        lb.push_back(to_logical(m, newer.view, num_logical));
      out.exact = true;
      out.guaranteed = true;
      out.pairs_checked = pairs;
      for (std::size_t i = 0; i < la.size() && out.guaranteed; ++i)
        for (std::size_t j = 0; j < lb.size(); ++j)
          if (!masks_intersect(la[i], lb[j])) {
            out.guaranteed = false;
            char buf[128];
            std::snprintf(buf, sizeof buf,
                          "disjoint quorum pair: epoch %d quorum %zu vs epoch "
                          "%d quorum %zu",
                          older.view.epoch, i, newer.view.epoch, j);
            out.detail = buf;
            break;
          }
      if (out.guaranteed) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "exact: all %llu minimal-quorum pairs intersect",
                      static_cast<unsigned long long>(pairs));
        out.detail = buf;
        return out;  // certified; MC estimate stays 0.
      }
    }
  }

  // Monte Carlo: sample one logical world per trial, acquire a quorum under
  // each epoch's family via its own probe strategy, and count trials where
  // both acquisitions succeed with disjoint logical footprints. Sequential
  // with a fixed seed — deterministic by construction.
  std::uint64_t disjoint = 0, both = 0;
  Rng base(seed);
  std::vector<char> up(static_cast<std::size_t>(num_logical), 1);
  for (std::uint64_t t = 0; t < mc_trials; ++t) {
    Rng trial = base.split(t);
    for (int s = 0; s < num_logical; ++s)
      up[static_cast<std::size_t>(s)] = trial.bernoulli(p) ? 0 : 1;
    Rng ra = trial.split(1);
    Rng rb = trial.split(2);
    const auto a = acquire_logical(fa, older.view, up, num_logical, &ra);
    if (!a) continue;
    const auto b = acquire_logical(fb, newer.view, up, num_logical, &rb);
    if (!b) continue;
    ++both;
    if (!masks_intersect(*a, *b)) ++disjoint;
  }
  out.mc_trials = mc_trials;
  out.mc_nonintersection =
      both == 0 ? 0.0
                : static_cast<double>(disjoint) / static_cast<double>(both);
  if (out.detail.empty()) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "mc: %llu/%llu acquired pairs disjoint over %llu trials",
                  static_cast<unsigned long long>(disjoint),
                  static_cast<unsigned long long>(both),
                  static_cast<unsigned long long>(mc_trials));
    out.detail = buf;
  }
  return out;
}

}  // namespace sqs
