// The witness model (Yu, DISC 2003 — reference [17] of the paper).
//
// The paper describes its predecessor as "an implicit (non-optimal) SQS
// construction": a fixed set of w designated *witnesses* is probed, and a
// client acquires by recording a full signed observation of the witness set
// with at least alpha positive replies. Formally the quorums are
//
//   { S : S is a full sign assignment over the w witnesses, |S+| >= alpha }.
//
// Any two such quorums either intersect positively or, being full
// assignments over the same w servers with disjoint positive parts, have
// dual overlap |S+| + |T+| >= 2 alpha — so this is an SQS (it is exactly
// OPT_a over the witness subuniverse, embedded in n servers). It is
// *non-optimal*: only the w witnesses contribute to availability
// (P[Bin(w, 1-p) >= alpha] < P[Bin(n, 1-p) >= alpha] for w < n), which is
// the gap the paper's OPT_a/OPT_d constructions close. Probe complexity is
// always exactly w (every witness is probed), already O(1) for constant w —
// the property [17] exploited and this paper strengthens to optimality.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/quorum_family.h"

namespace sqs {

class WitnessFamily : public QuorumFamily {
 public:
  // `witnesses` are the designated server indices (distinct, within n).
  WitnessFamily(int n, std::vector<int> witnesses, int alpha);
  // Convenience: witnesses = the first w servers.
  WitnessFamily(int n, int w, int alpha);

  const std::vector<int>& witnesses() const { return witnesses_; }
  int num_witnesses() const { return static_cast<int>(witnesses_.size()); }

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_; }
  bool is_strict() const override { return false; }
  // Accepts iff >= alpha witnesses are up (non-witness servers are inert).
  bool accepts(const Configuration& config) const override;
  int min_quorum_size() const override { return num_witnesses(); }
  // P[Bin(w, 1-p) >= alpha].
  double availability(double p) const override;
  // Probes every witness (deterministic, non-adaptive — Theorem 9 applies),
  // failing early once alpha positives are impossible.
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;

 private:
  int n_;
  std::vector<int> witnesses_;
  int alpha_;
};

}  // namespace sqs
