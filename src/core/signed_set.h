// Signed sets over a server universe (Definition 2 of the paper).
//
// The universe is U = {1..n} in the paper; internally servers are 0-based
// indices 0..n-1. A signed set holds disjoint positive and negative parts:
// `+i` means "client must reach server i", `-i` means "client believes server
// i is down". Paper-style 1-based signed literals (3, -1, ...) are accepted
// by the convenience constructors and produced by to_string() so examples
// read like the paper.

#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/bitset.h"

namespace sqs {

class SignedSet {
 public:
  SignedSet() = default;

  // Empty signed set over a universe of n servers.
  explicit SignedSet(int n) : pos_(static_cast<std::size_t>(n)), neg_(static_cast<std::size_t>(n)) {}

  // Builds from paper-style 1-based signed literals, e.g. {-1, 3}.
  static SignedSet from_literals(int n, std::initializer_list<int> literals);
  static SignedSet from_literals(int n, const std::vector<int>& literals);

  int universe_size() const { return static_cast<int>(pos_.size()); }

  const Bitset& positive() const { return pos_; }
  const Bitset& negative() const { return neg_; }

  bool has_positive(int server) const { return pos_.test(static_cast<std::size_t>(server)); }
  bool has_negative(int server) const { return neg_.test(static_cast<std::size_t>(server)); }
  bool mentions(int server) const { return has_positive(server) || has_negative(server); }

  // Re-targets to an empty signed set over n servers, reusing both bitsets'
  // storage; observably identical to assigning a fresh SignedSet(n).
  void reshape(int n) {
    pos_.reshape(static_cast<std::size_t>(n));
    neg_.reshape(static_cast<std::size_t>(n));
  }

  // Adding an element removes its dual first, preserving S ∩ Dual(S) = ∅.
  void add_positive(int server);
  void add_negative(int server);
  void remove(int server);

  std::size_t positive_count() const { return pos_.count(); }
  std::size_t negative_count() const { return neg_.count(); }
  // |S| = |S+| + |S-|; well-defined since the parts are disjoint.
  std::size_t size() const { return positive_count() + negative_count(); }
  bool empty() const { return pos_.none() && neg_.none(); }

  // Dual(S) = {Dual(i) | i in S}: swaps the positive and negative parts.
  SignedSet dual() const;

  // S ⊆ T as signed sets (positive part within positive part, negative
  // within negative).
  bool is_subset_of(const SignedSet& other) const {
    return pos_.is_subset_of(other.pos_) && neg_.is_subset_of(other.neg_);
  }

  // Q1+ ∩ Q2+ != ∅ — the "Intersection" branch of Definition 3.
  static bool positively_intersects(const SignedSet& a, const SignedSet& b) {
    return a.pos_.intersects(b.pos_);
  }

  // |Q1 ∩ Dual(Q2)| = |Q1+ ∩ Q2-| + |Q1- ∩ Q2+| — the "Dual Overlap" branch.
  // Symmetric in its arguments.
  static std::size_t dual_overlap(const SignedSet& a, const SignedSet& b) {
    return a.pos_.intersection_count(b.neg_) + a.neg_.intersection_count(b.pos_);
  }

  // The pairwise SQS compatibility predicate of Definition 3.
  static bool compatible(const SignedSet& a, const SignedSet& b, int alpha) {
    return positively_intersects(a, b) ||
           dual_overlap(a, b) >= 2 * static_cast<std::size_t>(alpha);
  }

  // Relabels servers: element i (0-based) becomes perm[i].
  SignedSet permuted(const std::vector<int>& perm) const;

  bool operator==(const SignedSet& other) const {
    return pos_ == other.pos_ && neg_ == other.neg_;
  }
  bool operator!=(const SignedSet& other) const { return !(*this == other); }
  bool operator<(const SignedSet& other) const {
    if (pos_ != other.pos_) return pos_ < other.pos_;
    return neg_ < other.neg_;
  }

  // Paper-style rendering with 1-based signed literals: "{1,-2,3}".
  std::string to_string() const;

 private:
  Bitset pos_;
  Bitset neg_;
};

// A configuration (Definition 4): for every server exactly one of {i, -i}.
// Stored as the bitset of *up* servers; exposes itself as a full signed set
// when set algebra with quorums is needed.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(Bitset up) : up_(std::move(up)) {}
  Configuration(int n, std::uint64_t up_mask)
      : up_(Bitset::from_mask(up_mask, static_cast<std::size_t>(n))) {}

  int universe_size() const { return static_cast<int>(up_.size()); }
  const Bitset& up() const { return up_; }
  bool is_up(int server) const { return up_.test(static_cast<std::size_t>(server)); }
  std::size_t num_up() const { return up_.count(); }
  std::size_t num_down() const { return static_cast<std::size_t>(universe_size()) - num_up(); }

  void set_up(int server, bool up) { up_.assign(static_cast<std::size_t>(server), up); }

  // Re-targets to n servers, all down, reusing storage; observably identical
  // to assigning a fresh Configuration(Bitset(n)).
  void reshape(int n) { up_.reshape(static_cast<std::size_t>(n)); }

  // In-place equivalent of Configuration(n, up_mask) (n <= 64).
  void assign_mask(int n, std::uint64_t up_mask) {
    up_.assign_mask(up_mask, static_cast<std::size_t>(n));
  }

  // The configuration as a signed set: C+ = up servers, C- = down servers.
  SignedSet as_signed_set() const;

  // Quorum Q can be acquired under this configuration iff Q ⊆ C.
  bool accepts(const SignedSet& quorum) const {
    return quorum.positive().is_subset_of(up_) && !quorum.negative().intersects(up_);
  }

  // Prob[C] = p^|C-| (1-p)^|C+| for i.i.d. server failure probability p.
  double probability(double p) const;

  bool operator==(const Configuration& other) const { return up_ == other.up_; }

 private:
  Bitset up_;
};

}  // namespace sqs
