#include "core/signed_set.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace sqs {

SignedSet SignedSet::from_literals(int n, std::initializer_list<int> literals) {
  return from_literals(n, std::vector<int>(literals));
}

SignedSet SignedSet::from_literals(int n, const std::vector<int>& literals) {
  SignedSet s(n);
  for (int lit : literals) {
    assert(lit != 0 && std::abs(lit) <= n);
    if (lit > 0) {
      s.add_positive(lit - 1);
    } else {
      s.add_negative(-lit - 1);
    }
  }
  return s;
}

void SignedSet::add_positive(int server) {
  neg_.reset(static_cast<std::size_t>(server));
  pos_.set(static_cast<std::size_t>(server));
}

void SignedSet::add_negative(int server) {
  pos_.reset(static_cast<std::size_t>(server));
  neg_.set(static_cast<std::size_t>(server));
}

void SignedSet::remove(int server) {
  pos_.reset(static_cast<std::size_t>(server));
  neg_.reset(static_cast<std::size_t>(server));
}

SignedSet SignedSet::dual() const {
  SignedSet d(universe_size());
  d.pos_ = neg_;
  d.neg_ = pos_;
  return d;
}

SignedSet SignedSet::permuted(const std::vector<int>& perm) const {
  assert(static_cast<int>(perm.size()) == universe_size());
  SignedSet out(universe_size());
  pos_.for_each([&](std::size_t i) { out.add_positive(perm[i]); });
  neg_.for_each([&](std::size_t i) { out.add_negative(perm[i]); });
  return out;
}

std::string SignedSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < universe_size(); ++i) {
    if (!mentions(i)) continue;
    if (!first) out += ",";
    if (has_negative(i)) out += "-";
    out += std::to_string(i + 1);
    first = false;
  }
  out += "}";
  return out;
}

SignedSet Configuration::as_signed_set() const {
  SignedSet s(universe_size());
  for (int i = 0; i < universe_size(); ++i) {
    if (is_up(i)) {
      s.add_positive(i);
    } else {
      s.add_negative(i);
    }
  }
  return s;
}

double Configuration::probability(double p) const {
  const double up_count = static_cast<double>(num_up());
  const double down_count = static_cast<double>(num_down());
  return std::pow(1.0 - p, up_count) * std::pow(p, down_count);
}

}  // namespace sqs
