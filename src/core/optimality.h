// Structural audits for the optimality results of Section 5.
//
// Theorem 20 gives necessary conditions on any SQS with optimal availability
// (Fig. 3); Theorem 24 proves no SQS dominates every optimal-availability
// SQS, via the pair OPT_b / OPT_c. These helpers check the conditions on
// concrete systems and expose the Theorem 24 witness quorums.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "core/explicit_sqs.h"

namespace sqs {

// Returns a description of the first Theorem 20 condition violated by `q`
// (assuming n >= 3 alpha - 1), or nullopt if all four hold:
//   1. every quorum has |Q+| >= alpha;
//   2. every configuration with exactly alpha positives is a quorum;
//   3. quorums with alpha <= |Q+| <= 2 alpha - 1 have |Q| >= n + alpha - |Q+|;
//   4. every quorum has |Q| >= 2 alpha.
std::optional<std::string> theorem20_violation(const ExplicitSqs& q);

// The incompatible pair from Theorem 24's proof (n >= 3 alpha + 1):
// {1..2alpha} ∈ OPT_b and {-2..-(n-alpha-1), (n-alpha)..n} ∈ OPT_c. They
// satisfy neither intersection nor dual overlap, so no single SQS can contain
// subsets of both.
std::pair<SignedSet, SignedSet> theorem24_witnesses(int n, int alpha);

}  // namespace sqs
