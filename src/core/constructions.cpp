#include "core/constructions.h"

#include <cassert>
#include <numeric>

#include "core/batch.h"

#include "util/binomial.h"

namespace sqs {

namespace {

// Calls fn(mask) for every n-bit mask; callers filter by popcount. All
// explicit builders are bounded to n <= 24 by assertion.
template <typename Fn>
void for_each_mask(int n, Fn&& fn) {
  assert(n <= 24 && "explicit constructions enumerate 2^n sets");
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) fn(mask);
}

// The signed set over prefix {0..i-1} whose positive part is `mask`.
SignedSet prefix_signed_set(int n, int i, std::uint64_t mask) {
  SignedSet s(n);
  for (int j = 0; j < i; ++j) {
    if ((mask >> j) & 1u) {
      s.add_positive(j);
    } else {
      s.add_negative(j);
    }
  }
  return s;
}

}  // namespace

ExplicitSqs opt_a_explicit(int n, int alpha) {
  ExplicitSqs out(n, alpha);
  for_each_mask(n, [&](std::uint64_t mask) {
    if (__builtin_popcountll(mask) >= alpha)
      out.add_quorum(Configuration(n, mask).as_signed_set());
  });
  out.set_name("OPT_a(explicit)");
  return out;
}

ExplicitSqs opt_b_explicit(int n, int alpha) {
  ExplicitSqs out = opt_a_explicit(n, alpha);
  SignedSet extra(n);
  for (int i = 0; i < 2 * alpha; ++i) extra.add_positive(i);
  out.add_quorum(extra);
  out.set_name("OPT_b(explicit)");
  return out;
}

ExplicitSqs hole_explicit(int n, int alpha) {
  ExplicitSqs out(n, alpha);
  // One absent server ("the hole"), every other server signed, exactly
  // alpha+1 positives.
  for (int hole = 0; hole < n; ++hole) {
    for_each_mask(n, [&](std::uint64_t mask) {
      if ((mask >> hole) & 1u) return;
      if (__builtin_popcountll(mask) != alpha + 1) return;
      SignedSet s(n);
      for (int j = 0; j < n; ++j) {
        if (j == hole) continue;
        if ((mask >> j) & 1u) {
          s.add_positive(j);
        } else {
          s.add_negative(j);
        }
      }
      out.add_quorum(std::move(s));
    });
  }
  out.set_name("HOLE(explicit)");
  return out;
}

ExplicitSqs opt_c_explicit(int n, int alpha) {
  ExplicitSqs out = hole_explicit(n, alpha);
  const ExplicitSqs opt_a = opt_a_explicit(n, alpha);
  for (const auto& q : opt_a.quorums()) out.add_quorum(q);
  out.set_name("OPT_c(explicit)");
  return out;
}

std::vector<SignedSet> lad_explicit(int n, int i) {
  assert(i <= n && i <= 24);
  std::vector<SignedSet> out;
  for (std::uint64_t mask = 0; mask < (1ull << i); ++mask)
    out.push_back(prefix_signed_set(n, i, mask));
  return out;
}

std::vector<SignedSet> lada_explicit(int n, int i, int alpha) {
  assert(2 * alpha <= i && i <= n - alpha);
  std::vector<SignedSet> out;
  for (std::uint64_t mask = 0; mask < (1ull << i); ++mask)
    if (__builtin_popcountll(mask) >= 2 * alpha)
      out.push_back(prefix_signed_set(n, i, mask));
  return out;
}

std::vector<SignedSet> ladb_explicit(int n, int i, int alpha) {
  assert(n - alpha + 1 <= i && i <= n);
  std::vector<SignedSet> out;
  for (std::uint64_t mask = 0; mask < (1ull << i); ++mask)
    if (__builtin_popcountll(mask) >= n + alpha - i)
      out.push_back(prefix_signed_set(n, i, mask));
  return out;
}

ExplicitSqs opt_d_explicit(int n, int alpha) {
  ExplicitSqs out(n, alpha);
  for (int i = 2 * alpha; i <= n - alpha; ++i)
    for (auto& s : lada_explicit(n, i, alpha)) out.add_quorum(std::move(s));
  for (int i = n - alpha + 1; i <= n; ++i)
    for (auto& s : ladb_explicit(n, i, alpha)) out.add_quorum(std::move(s));
  out.set_name("OPT_d(explicit)");
  return out;
}

// --- OptAFamily ---

OptAFamily::OptAFamily(int n, int alpha) : n_(n), alpha_(alpha) {
  assert(n >= 2 * alpha && alpha >= 1);
}

std::string OptAFamily::name() const {
  return "OPT_a(n=" + std::to_string(n_) + ",a=" + std::to_string(alpha_) + ")";
}

bool OptAFamily::accepts(const Configuration& config) const {
  return config.num_up() >= static_cast<std::size_t>(alpha_);
}

void OptAFamily::accepts_batch(const WorldBatch& worlds, Bitset& out) const {
  batch_count_at_least(worlds, alpha_, out);
}

double OptAFamily::availability(double p) const {
  return binom_tail_geq(n_, alpha_, 1.0 - p);
}

namespace {

// OPT_a quorums are whole configurations, so acquisition must probe all n
// servers; the only early exit is failure once fewer than alpha servers can
// still be live.
class OptAStrategy : public ProbeStrategy {
 public:
  OptAStrategy(int n, int alpha) : n_(n), alpha_(alpha) { reset(nullptr); }

  void reset(Rng* /*rng*/) override {
    observed_.reshape(n_);
    step_ = 0;
    pos_ = 0;
    status_ = ProbeStatus::kInProgress;
  }

  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }
  int next_server() const override { return step_; }

  void observe(int server, bool reached) override {
    assert(server == step_);
    (void)server;
    if (reached) {
      observed_.add_positive(step_);
      ++pos_;
    } else {
      observed_.add_negative(step_);
    }
    ++step_;
    const int neg = step_ - pos_;
    if (neg >= n_ + 1 - alpha_) {
      status_ = ProbeStatus::kNoQuorum;
    } else if (step_ == n_) {
      status_ = pos_ >= alpha_ ? ProbeStatus::kAcquired : ProbeStatus::kNoQuorum;
    }
  }

  SignedSet acquired_quorum() const override { return observed_; }
  void acquired_quorum_into(SignedSet& out) const override { out = observed_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return false; }

 private:
  int n_;
  int alpha_;
  SignedSet observed_;
  int step_ = 0;
  int pos_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> OptAFamily::make_probe_strategy() const {
  return std::make_unique<OptAStrategy>(n_, alpha_);
}

// --- OptDFamily ---

OptDFamily::OptDFamily(int n, int alpha) : n_(n), alpha_(alpha) {
  assert(n >= 3 * alpha - 1 && alpha >= 1);
  order_.resize(static_cast<std::size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
}

std::string OptDFamily::name() const {
  return "OPT_d(n=" + std::to_string(n_) + ",a=" + std::to_string(alpha_) + ")";
}

bool OptDFamily::accepts(const Configuration& config) const {
  // As(OPT_d) = OPT_a (Theorem 34): a quorum exists iff >= alpha servers up.
  return config.num_up() >= static_cast<std::size_t>(alpha_);
}

void OptDFamily::accepts_batch(const WorldBatch& worlds, Bitset& out) const {
  batch_count_at_least(worlds, alpha_, out);
}

double OptDFamily::availability(double p) const {
  return binom_tail_geq(n_, alpha_, 1.0 - p);
}

void OptDFamily::set_probe_order(std::vector<int> order) {
  assert(static_cast<int>(order.size()) == n_);
  order_ = std::move(order);
}

std::unique_ptr<ProbeStrategy> OptDFamily::make_probe_strategy() const {
  return std::make_unique<OptDSequentialStrategy>(n_, alpha_, order_);
}

OptDSequentialStrategy::OptDSequentialStrategy(int n, int alpha,
                                               std::vector<int> order)
    : n_(n), alpha_(alpha), order_(std::move(order)), observed_(n) {
  assert(static_cast<int>(order_.size()) == n_);
  reset(nullptr);
}

void OptDSequentialStrategy::reset(Rng* /*rng*/) {
  observed_.reshape(n_);
  step_ = 0;
  pos_ = 0;
  neg_ = 0;
  status_ = ProbeStatus::kInProgress;
}

void OptDSequentialStrategy::observe(int server, bool reached) {
  assert(status_ == ProbeStatus::kInProgress);
  assert(server == order_[static_cast<std::size_t>(step_)]);
  if (reached) {
    observed_.add_positive(server);
    ++pos_;
  } else {
    observed_.add_negative(server);
    ++neg_;
  }
  ++step_;
  // ServerProbe stop rules (Definition 26). The first two merge into
  // pos >= min(2 alpha, n + alpha - i).
  if (pos_ >= 2 * alpha_ || pos_ >= n_ + alpha_ - step_) {
    status_ = ProbeStatus::kAcquired;
  } else if (neg_ >= n_ + 1 - alpha_) {
    status_ = ProbeStatus::kNoQuorum;
  }
}

}  // namespace sqs
