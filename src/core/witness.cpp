#include "core/witness.h"

#include <cassert>
#include <numeric>
#include <set>

#include "util/binomial.h"

namespace sqs {

WitnessFamily::WitnessFamily(int n, std::vector<int> witnesses, int alpha)
    : n_(n), witnesses_(std::move(witnesses)), alpha_(alpha) {
  assert(alpha_ >= 1);
  assert(static_cast<int>(witnesses_.size()) >= 2 * alpha_ &&
         "need w >= 2 alpha witnesses for dual overlap to be satisfiable");
  std::set<int> unique(witnesses_.begin(), witnesses_.end());
  assert(unique.size() == witnesses_.size() && "witnesses must be distinct");
  for (int w : witnesses_) assert(w >= 0 && w < n_);
  (void)unique;
}

WitnessFamily::WitnessFamily(int n, int w, int alpha)
    : WitnessFamily(n,
                    [w] {
                      std::vector<int> ids(static_cast<std::size_t>(w));
                      std::iota(ids.begin(), ids.end(), 0);
                      return ids;
                    }(),
                    alpha) {}

std::string WitnessFamily::name() const {
  return "Witness(n=" + std::to_string(n_) + ",w=" +
         std::to_string(num_witnesses()) + ",a=" + std::to_string(alpha_) + ")";
}

bool WitnessFamily::accepts(const Configuration& config) const {
  int up = 0;
  for (int w : witnesses_)
    if (config.is_up(w)) ++up;
  return up >= alpha_;
}

double WitnessFamily::availability(double p) const {
  return binom_tail_geq(num_witnesses(), alpha_, 1.0 - p);
}

namespace {

class WitnessStrategy : public ProbeStrategy {
 public:
  WitnessStrategy(int n, std::vector<int> witnesses, int alpha)
      : n_(n), witnesses_(std::move(witnesses)), alpha_(alpha) {
    reset(nullptr);
  }

  void reset(Rng* /*rng*/) override {
    observed_ = SignedSet(n_);
    step_ = 0;
    pos_ = 0;
    status_ = ProbeStatus::kInProgress;
  }

  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }
  int next_server() const override {
    return witnesses_[static_cast<std::size_t>(step_)];
  }

  void observe(int server, bool reached) override {
    assert(server == witnesses_[static_cast<std::size_t>(step_)]);
    if (reached) {
      observed_.add_positive(server);
      ++pos_;
    } else {
      observed_.add_negative(server);
    }
    ++step_;
    const int w = static_cast<int>(witnesses_.size());
    const int remaining = w - step_;
    if (pos_ + remaining < alpha_) {
      status_ = ProbeStatus::kNoQuorum;  // alpha positives now impossible
    } else if (step_ == w) {
      status_ = pos_ >= alpha_ ? ProbeStatus::kAcquired : ProbeStatus::kNoQuorum;
    }
  }

  // The quorum is the full signed observation of the witness set.
  SignedSet acquired_quorum() const override { return observed_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return false; }

 private:
  int n_;
  std::vector<int> witnesses_;
  int alpha_;
  SignedSet observed_{0};
  int step_ = 0;
  int pos_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> WitnessFamily::make_probe_strategy() const {
  return std::make_unique<WitnessStrategy>(n_, witnesses_, alpha_);
}

}  // namespace sqs
