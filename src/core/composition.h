// Composition of a strict quorum system with OPT_a (Definition 40).
//
// Given a strict (unsigned) quorum system UQ over servers {0..k-1} whose
// smallest quorum has size >= 2 alpha, the composition UQ + OPT_a over
// {0..n-1} is the signed set system
//
//     UQ  ∪  (∪_{i=k..n} LADC_i)  ∪  OPT_a
//
// where LADC_i is the set of full sign assignments over the prefix {0..i-1}
// with exactly k positives (the "cushion" between UQ and OPT_a that keeps
// probe complexity bounded). Theorem 42: the result is an SQS with OPT_a's
// availability, and load / expected probe complexity within
// (1 - Avail(UQ))-sized additive terms of UQ's — which is how SQS breaks
// tradeoff inequalities (1) and (2).
//
// The probe strategy is the three-phase algorithm of Theorem 42's proof:
//   1. run UQ's own strategy on {0..k-1}; return if it acquires;
//   2. sweep servers 0..n-1 in index order (reusing phase-1 results) until
//      the contiguous prefix holds k positives (a LADC quorum);
//   3. after all n servers: >= alpha positives means an OPT_a quorum.

#pragma once

#include <memory>

#include "core/quorum_family.h"

namespace sqs {

class CompositionFamily : public QuorumFamily {
 public:
  // `uq` must be strict, over a universe k <= n, with min quorum size
  // >= 2 alpha (asserted).
  CompositionFamily(std::shared_ptr<const QuorumFamily> uq, int n, int alpha);

  const QuorumFamily& inner() const { return *uq_; }
  int inner_universe_size() const { return k_; }

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_; }
  bool is_strict() const override { return false; }
  // As(UQ + OPT_a) = OPT_a: accepts iff >= alpha servers are up.
  bool accepts(const Configuration& config) const override;
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override { return uq_->min_quorum_size(); }
  double availability(double p) const override;
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;

 private:
  std::shared_ptr<const QuorumFamily> uq_;
  int k_;
  int n_;
  int alpha_;
};

}  // namespace sqs
