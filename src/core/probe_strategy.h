// Probe strategies (Definition 7).
//
// The paper models a probe strategy as a binary decision tree over probe
// outcomes. We expose the equivalent operational interface: the strategy is
// asked which server to probe next, observes success/failure, and eventually
// terminates declaring either an acquired quorum or that no live quorum
// exists. A *non-adaptive* strategy's probe order does not depend on observed
// outcomes (only on randomness drawn at reset) — this is the condition under
// which Theorem 9/12's non-intersection bound applies.
//
// Strategies are single-use state machines: reset() begins an acquisition.
// The probe engine (src/probe) enforces that no server is probed twice.

#pragma once

#include <memory>

#include "core/signed_set.h"
#include "util/rng.h"

namespace sqs {

enum class ProbeStatus {
  kInProgress,  // next_server() names the next probe
  kAcquired,    // acquired_quorum() holds a quorum of the family
  kNoQuorum,    // strategy has established that no live quorum exists
};

class ProbeStrategy {
 public:
  virtual ~ProbeStrategy() = default;

  // Starts a new acquisition. Randomized strategies draw all their choices
  // from `rng`; deterministic strategies ignore it (it may be null for them).
  virtual void reset(Rng* rng) = 0;

  // Size of the server universe the strategy probes over.
  virtual int universe_size() const = 0;

  virtual ProbeStatus status() const = 0;

  // The next server to probe; only meaningful while status()==kInProgress.
  virtual int next_server() const = 0;

  // Reports the outcome of the probe issued for `server`.
  virtual void observe(int server, bool reached) = 0;

  // The quorum acquired; only meaningful when status()==kAcquired. Always a
  // subset of the signed set of probed servers, per the paper's requirement
  // that clients coordinate with every reached probed server.
  virtual SignedSet acquired_quorum() const = 0;

  // Writes the acquired quorum into `out`, reusing its capacity. The
  // default copies acquired_quorum(); hot strategies override with a plain
  // member assignment so the scratch-arena probe loop
  // (run_probe_into, src/probe/engine.h) allocates nothing per trial.
  virtual void acquired_quorum_into(SignedSet& out) const {
    out = acquired_quorum();
  }

  // True if the probe order can depend on earlier outcomes.
  virtual bool is_adaptive() const = 0;

  // True if reset(rng) draws randomness (a distribution over deterministic
  // strategies, mu in the paper's notation).
  virtual bool is_randomized() const = 0;
};

}  // namespace sqs
