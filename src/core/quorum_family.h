// Implicit quorum families.
//
// Explicit quorum lists (ExplicitSqs) only scale to tiny universes; the
// paper's constructions (OPT_a, OPT_d, compositions, Paths) have
// exponentially many quorums but admit O(n) acceptance tests and dedicated
// probe strategies. QuorumFamily is the scalable interface all of them and
// all baseline strict systems implement; analyses and benches are written
// against it.

#pragma once

#include <memory>
#include <string>

#include "core/probe_strategy.h"
#include "core/signed_set.h"
#include "util/rng.h"

namespace sqs {

class QuorumFamily {
 public:
  virtual ~QuorumFamily() = default;

  virtual std::string name() const = 0;

  virtual int universe_size() const = 0;

  // The dual-overlap parameter of Definition 3. Strict (unsigned) systems,
  // whose quorums always intersect positively, report 0.
  virtual int alpha() const = 0;

  // True for unsigned quorum systems: every quorum is all-positive and any
  // two quorums intersect.
  virtual bool is_strict() const = 0;

  // Does some quorum Q of the family satisfy Q ⊆ C? Availability and the
  // probe-complexity lower bounds are defined through this predicate.
  virtual bool accepts(const Configuration& config) const = 0;

  // Size of the smallest quorum; drives the load lower bound of Theorem 38
  // and the composition precondition of Definition 40 (>= 2 alpha).
  virtual int min_quorum_size() const = 0;

  // Availability at i.i.d. failure probability p. Families with a closed
  // form override this; the default falls back to Monte Carlo over accepts()
  // with a fixed internal seed (reproducible), or exact enumeration when the
  // universe is small.
  virtual double availability(double p) const;

  // A fresh probe strategy for acquiring a quorum of this family.
  virtual std::unique_ptr<ProbeStrategy> make_probe_strategy() const = 0;

 protected:
  // Exact availability by enumerating all 2^n configurations (n <= 24).
  double availability_exact_enumeration(double p) const;
  // Monte Carlo availability over `samples` sampled configurations. Runs
  // on the shared trial runtime (parallel across SQS_THREADS); the chunked
  // seeding makes the estimate bit-identical for any thread count.
  double availability_monte_carlo(double p, int samples, std::uint64_t seed) const;
};

}  // namespace sqs
