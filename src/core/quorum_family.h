// Implicit quorum families.
//
// Explicit quorum lists (ExplicitSqs) only scale to tiny universes; the
// paper's constructions (OPT_a, OPT_d, compositions, Paths) have
// exponentially many quorums but admit O(n) acceptance tests and dedicated
// probe strategies. QuorumFamily is the scalable interface all of them and
// all baseline strict systems implement; analyses and benches are written
// against it.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/probe_strategy.h"
#include "core/signed_set.h"
#include "util/rng.h"

namespace sqs {

struct TrialContext;
class Bitset;
class WorldBatch;

// Defaults of the Monte Carlo availability fallback. Exposed so the sweep
// engine (src/sweep) can schedule grid cells that reduce to exactly the
// same bits as a standalone availability() call.
inline constexpr int kAvailabilityMcSamples = 200000;
inline constexpr std::uint64_t kAvailabilityMcSeed = 0xa5a5a5a5ull;

class QuorumFamily {
 public:
  virtual ~QuorumFamily() = default;

  virtual std::string name() const = 0;

  virtual int universe_size() const = 0;

  // The dual-overlap parameter of Definition 3. Strict (unsigned) systems,
  // whose quorums always intersect positively, report 0.
  virtual int alpha() const = 0;

  // True for unsigned quorum systems: every quorum is all-positive and any
  // two quorums intersect.
  virtual bool is_strict() const = 0;

  // Does some quorum Q of the family satisfy Q ⊆ C? Availability and the
  // probe-complexity lower bounds are defined through this predicate.
  virtual bool accepts(const Configuration& config) const = 0;

  // Batched acceptance over a WorldBatch (src/core/batch.h): bit t of `out`
  // must equal accepts(trial t) — the scalar predicate is the oracle, and
  // BatchPolicy::kDifferential enforces the equality trial by trial.
  // Threshold-style families override this with a popcount ladder and Paths
  // with a frontier BFS (64 trials per word pass); the default extracts
  // each trial and runs accepts(), so every family is batch-callable.
  virtual void accepts_batch(const WorldBatch& worlds, Bitset& out) const;

  // Size of the smallest quorum; drives the load lower bound of Theorem 38
  // and the composition precondition of Definition 40 (>= 2 alpha).
  virtual int min_quorum_size() const = 0;

  // Byzantine masking degree b (Malkhi–Reiter–Wool): any two quorums of the
  // family share >= 2b+1 servers, so among the replies backing two
  // overlapping accesses the correct servers outvote b liars. Plain
  // families report 0 — the paper's machinery defends against silence, not
  // lies. Masking variants (src/core/masking.h) override; clients use this
  // as the vote threshold (b+1 matching replies) when reading.
  virtual int masking_b() const { return 0; }

  // Availability at i.i.d. failure probability p. Families with a closed
  // form override this; the default falls back to Monte Carlo over accepts()
  // with a fixed internal seed (reproducible), or exact enumeration when the
  // universe is small.
  virtual double availability(double p) const;

  // A fresh probe strategy for acquiring a quorum of this family.
  virtual std::unique_ptr<ProbeStrategy> make_probe_strategy() const = 0;

  // Monte Carlo availability over `samples` sampled configurations. Runs
  // on the shared trial runtime (parallel across SQS_THREADS); the chunked
  // seeding makes the estimate bit-identical for any thread count. Public
  // so sweeps and tests can pin samples/seed explicitly; availability()
  // calls it with the kAvailabilityMc* defaults.
  double availability_monte_carlo(double p, int samples = kAvailabilityMcSamples,
                                  std::uint64_t seed = kAvailabilityMcSeed) const;

 protected:
  // Exact availability by enumerating all 2^n configurations (n <= 24).
  double availability_exact_enumeration(double p) const;
};

// Per-chunk kernel of availability_monte_carlo: samples one configuration
// per trial in [ctx.chunk.begin, ctx.chunk.end) from `rng` and counts
// accepting ones into `live`. The sampled configuration is borrowed from
// the chunk's scratch arena (zero steady-state allocations). Shared with
// the sweep engine (src/sweep) so a flattened grid cell reproduces the
// per-cell estimate bit for bit.
void availability_mc_chunk(const QuorumFamily& family, double p,
                           const TrialContext& ctx, Rng& rng,
                           std::int64_t& live);

}  // namespace sqs
