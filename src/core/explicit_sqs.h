// Explicit signed quorum systems: a concrete list of quorums.
//
// This is the definition-level object of the paper (Definition 3). It
// supports exhaustive operations — verification of the SQS property,
// acceptance sets (Definition 5), exact availability (Definition 6),
// domination (Definition 19) and permutation (Definition 21) — all of which
// are exponential in n and intended for small universes (tests, optimality
// audits, and the counterexample constructions OPT_b / OPT_c / HOLE).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/quorum_family.h"
#include "core/signed_set.h"

namespace sqs {

// A pair of quorum indices violating Definition 3 (neither positive
// intersection nor dual overlap >= 2 alpha).
struct SqsViolation {
  std::size_t first;
  std::size_t second;
};

class ExplicitSqs : public QuorumFamily {
 public:
  ExplicitSqs(int n, int alpha) : n_(n), alpha_(alpha) {}
  ExplicitSqs(int n, int alpha, std::vector<SignedSet> quorums);

  // Adds a quorum (does not re-verify; call verify() when done building).
  void add_quorum(SignedSet quorum);

  const std::vector<SignedSet>& quorums() const { return quorums_; }
  std::size_t num_quorums() const { return quorums_.size(); }

  // First pair of quorums violating Definition 3, or nullopt if this is a
  // valid SQS. Also rejects quorums with empty positive part (such a quorum
  // is incompatible with itself).
  std::optional<SqsViolation> verify() const;
  bool is_valid_sqs() const { return !verify().has_value(); }

  // Whether `candidate` can be added while keeping the system a valid SQS.
  bool can_add(const SignedSet& candidate) const;

  // The acceptance set As(Q) (Definition 5): all configurations accepting
  // some quorum, represented as an ExplicitSqs whose quorums are full
  // configurations. Exponential: requires n <= 24.
  ExplicitSqs acceptance_set() const;

  // Q ⪰ other (Definition 19): every quorum of `other` contains some quorum
  // of this system.
  bool dominates(const ExplicitSqs& other) const;

  // The system after relabeling servers: element i becomes perm[i]
  // (0-based). Definition 21.
  ExplicitSqs permuted(const std::vector<int>& perm) const;

  // Definition 21's ⪰∃: does some permutation X exist with
  // this ⪰ Perm_X(other)? Enumerates all n! permutations (n <= 8 asserted).
  // Returns the witnessing permutation, or nullopt.
  std::optional<std::vector<int>> dominating_permutation(
      const ExplicitSqs& other) const;

  bool contains_quorum(const SignedSet& quorum) const;

  // --- QuorumFamily interface ---
  std::string name() const override { return name_.empty() ? "explicit" : name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_; }
  bool is_strict() const override;
  bool accepts(const Configuration& config) const override;
  // Per-quorum lane masks: a trial's lane bit survives a quorum iff every
  // positive literal's column bit is set and every negative literal's is
  // clear; accepts = OR over quorums. 64 trials per quorum pass.
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override;
  double availability(double p) const override;
  // Probes servers 0..n-1 in index order, stopping as soon as the observed
  // signed prefix contains some quorum or can no longer contain any.
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;

 private:
  int n_;
  int alpha_;
  std::vector<SignedSet> quorums_;
  std::string name_;
};

}  // namespace sqs
