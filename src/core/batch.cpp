#include "core/batch.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/quorum_family.h"
#include "runtime/run_trials.h"
#include "runtime/scratch.h"

namespace sqs {

void WorldBatch::load_rows(std::size_t w, const std::uint64_t* rows,
                           std::size_t count) {
  assert(w < lane_words_);
  assert(count <= kBatchLaneBits);
  const std::size_t row_words = batch_row_words(n_);
  std::uint64_t* col = lanes(w);
  std::uint64_t block[64];
  for (std::size_t rw = 0; rw < row_words; ++rw) {
    for (std::size_t r = 0; r < kBatchLaneBits; ++r)
      block[r] = r < count ? rows[r * row_words + rw] : 0;
    transpose_64x64(block);
    const std::size_t base = rw * kBatchLaneBits;
    const std::size_t lim =
        std::min<std::size_t>(kBatchLaneBits, static_cast<std::size_t>(n_) - base);
    for (std::size_t c = 0; c < lim; ++c) col[base + c] = block[c];
  }
}

void WorldBatch::extract_trial(std::uint64_t t, Configuration& out) const {
  assert(t < trials_);
  out.reshape(n_);
  const std::uint64_t* col = lanes(static_cast<std::size_t>(t / kBatchLaneBits));
  const std::uint64_t bit = t % kBatchLaneBits;
  for (int s = 0; s < n_; ++s)
    if ((col[s] >> bit) & 1u) out.set_up(s, true);
}

void sample_worlds_into(int n, double p, std::uint64_t num_trials, Rng& rng,
                        WorkerScratch& scratch, WorldBatch& out) {
  out.reshape(n, num_trials);
  const std::size_t row_words = batch_row_words(n);
  Borrowed<std::vector<std::uint64_t>> staging =
      scratch.borrow<std::vector<std::uint64_t>>();
  std::vector<std::uint64_t>& rows = *staging;
  std::uint64_t t = 0;
  for (std::size_t w = 0; t < num_trials; ++w) {
    const std::uint64_t block =
        std::min<std::uint64_t>(kBatchLaneBits, num_trials - t);
    rows.assign(kBatchLaneBits * row_words, 0);
    for (std::uint64_t r = 0; r < block; ++r) {
      std::uint64_t* row = rows.data() + r * row_words;
      // The scalar draw order, verbatim: up iff the failure draw missed.
      for (int s = 0; s < n; ++s)
        if (!rng.bernoulli(p))
          row[static_cast<std::size_t>(s) / kBatchLaneBits] |=
              1ull << (static_cast<std::size_t>(s) % kBatchLaneBits);
    }
    out.load_rows(w, rows.data(), static_cast<std::size_t>(block));
    t += block;
  }
}

void batch_count_at_least(const WorldBatch& worlds, int k, Bitset& out) {
  const int n = worlds.universe_size();
  out.reshape(static_cast<std::size_t>(worlds.num_trials()));
  const int planes_n = lane_counter_planes(n);
  assert(planes_n <= 63);
  std::uint64_t planes[64];
  for (std::size_t w = 0; w < worlds.num_lane_words(); ++w) {
    const std::uint64_t mask = worlds.lane_mask(w);
    std::fill(planes, planes + planes_n, 0);
    const std::uint64_t* col = worlds.lanes(w);
    for (int s = 0; s < n; ++s) lane_counter_add(planes, planes_n, col[s]);
    const std::uint64_t accept =
        k <= 0 ? ~0ull
               : lane_counter_at_least(planes, planes_n,
                                       static_cast<std::uint64_t>(k));
    out.set_word(w, accept & mask);
  }
}

void QuorumFamily::accepts_batch(const WorldBatch& worlds, Bitset& out) const {
  // Fallback for families without a vectorized kernel: extract each trial
  // row and run the scalar predicate. Same bits, no speedup — it exists so
  // BatchPolicy::kBatched is well-defined for every family.
  out.reshape(static_cast<std::size_t>(worlds.num_trials()));
  Borrowed<Configuration> config =
      WorkerScratch::for_thread().borrow<Configuration>();
  config->reshape(worlds.universe_size());
  for (std::uint64_t t = 0; t < worlds.num_trials(); ++t) {
    worlds.extract_trial(t, *config);
    if (accepts(*config)) out.set(static_cast<std::size_t>(t));
  }
}

void availability_mc_chunk_batched(const QuorumFamily& family, double p,
                                   const TrialContext& ctx, Rng& rng,
                                   std::int64_t& live) {
  const int n = family.universe_size();
  const std::uint64_t trials = ctx.chunk.end - ctx.chunk.begin;
  Borrowed<WorldBatch> worlds = ctx.scratch().borrow<WorldBatch>();
  sample_worlds_into(n, p, trials, rng, ctx.scratch(), *worlds);
  Borrowed<Bitset> accepted = ctx.scratch().borrow<Bitset>();
  family.accepts_batch(*worlds, *accepted);
  if (ctx.batch == BatchPolicy::kDifferential) {
    Borrowed<Configuration> config = ctx.scratch().borrow<Configuration>();
    config->reshape(n);
    for (std::uint64_t t = 0; t < trials; ++t) {
      worlds->extract_trial(t, *config);
      const bool scalar = family.accepts(*config);
      if (scalar != accepted->test(static_cast<std::size_t>(t)))
        throw std::runtime_error(
            "BatchPolicy::differential: accepts_batch disagrees with the "
            "scalar oracle for family " + family.name() + " at trial " +
            std::to_string(ctx.chunk.begin + t) + " (scalar=" +
            (scalar ? "true" : "false") + ")");
    }
  }
  // 64-bit accumulation: lane popcounts are summed into a signed 64-bit
  // live count, so batches far beyond 2^16 trials cannot wrap (regression-
  // tested with a 70k-trial single chunk in tests/test_batch.cpp).
  static_assert(sizeof(live) == 8, "live count must be 64-bit");
  live += static_cast<std::int64_t>(accepted->count());
}

}  // namespace sqs
