// Epoch-based reconfiguration: the server universe and quorum family can
// change mid-run.
//
// A MembershipView maps a family's index space (0..n_e-1) onto *logical*
// server ids that are stable across epochs; an EpochedFamily is the full
// deterministic schedule of (time, view, family) transitions. Clients hold a
// view of some epoch and may fall behind — the safety question is whether a
// quorum acquired under an old epoch's family still intersects the current
// epoch's write quorums in logical-id space. check_cross_epoch_intersection
// answers it exactly on small strict universes (minimal-quorum enumeration)
// and by Monte Carlo elsewhere (fixed seed, sequential: bit-identical
// regardless of thread count).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/quorum_family.h"

namespace sqs {

// members[i] = logical server id backing family index i in this epoch.
struct MembershipView {
  int epoch = 0;
  std::vector<int> members;

  int universe_size() const { return static_cast<int>(members.size()); }
  bool contains(int logical) const;
  // Family index of a logical id, or -1 when it is not a member.
  int index_of(int logical) const;
};

struct EpochEntry {
  double at = 0.0;  // transition time; epoch 0 starts at 0.0
  MembershipView view;
  std::shared_ptr<const QuorumFamily> family;  // universe == view size
};

// The deterministic reconfiguration schedule for one run. Immutable once
// built; shared by config value across sweep replicates.
struct EpochedFamily {
  std::vector<EpochEntry> epochs;
  // Total number of distinct logical ids ever used; logical ids are dense
  // in [0, num_logical).
  int num_logical = 0;

  int num_epochs() const { return static_cast<int>(epochs.size()); }
  int final_epoch() const { return num_epochs() - 1; }
  const EpochEntry& entry(int e) const { return epochs[static_cast<std::size_t>(e)]; }
  // The epoch in force at time t (last transition with at <= t).
  int epoch_at(double t) const;
  bool is_member(int e, int logical) const { return entry(e).view.contains(logical); }

  // Structural sanity: epoch 0 at t=0, strictly increasing times, family
  // sizes matching views, logical ids in range and distinct per view.
  // Complains on stderr and returns false when violated.
  bool validate() const;
};

// Mutable cursor into a schedule, advanced only by scheduled transition
// events; stale clients compare their own view epoch against `current`.
struct EpochState {
  const EpochedFamily* schedule = nullptr;
  int current = 0;
};

struct CrossEpochCheck {
  // True when the exact minimal-quorum enumeration ran (both families
  // strict and small enough); then `guaranteed` is authoritative.
  bool exact = false;
  bool guaranteed = false;  // every cross-epoch quorum pair intersects
  std::uint64_t pairs_checked = 0;
  // Monte Carlo estimate of Pr[both sides acquire quorums with disjoint
  // logical positive parts]; 0 when the exact check certified intersection.
  double mc_nonintersection = 0.0;
  std::uint64_t mc_trials = 0;
  std::string detail;  // human-readable summary (counterexample or stats)
};

// Checks the cross-epoch intersection invariant between two adjacent epochs:
// a quorum of `older` (a stale client's view) against the quorums of
// `newer`, intersected in logical-id space. p is the per-server miss
// probability used by the MC fallback.
CrossEpochCheck check_cross_epoch_intersection(const EpochEntry& older,
                                               const EpochEntry& newer,
                                               int num_logical,
                                               double p = 0.05,
                                               std::uint64_t mc_trials = 20000,
                                               std::uint64_t seed = 0x5105e0c4ull);

}  // namespace sqs
