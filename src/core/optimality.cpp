#include "core/optimality.h"

#include <cassert>

namespace sqs {

std::optional<std::string> theorem20_violation(const ExplicitSqs& q) {
  const int n = q.universe_size();
  const int alpha = q.alpha();
  assert(n >= 3 * alpha - 1);

  for (std::size_t idx = 0; idx < q.quorums().size(); ++idx) {
    const SignedSet& quorum = q.quorums()[idx];
    const int pos = static_cast<int>(quorum.positive_count());
    const int size = static_cast<int>(quorum.size());
    if (pos < alpha)
      return "quorum #" + std::to_string(idx) + " has |Q+| = " +
             std::to_string(pos) + " < alpha";
    if (pos <= 2 * alpha - 1 && size < n + alpha - pos)
      return "quorum #" + std::to_string(idx) + " has |Q| = " +
             std::to_string(size) + " < n + alpha - |Q+|";
    if (size < 2 * alpha)
      return "quorum #" + std::to_string(idx) + " has |Q| = " +
             std::to_string(size) + " < 2 alpha";
  }

  // Condition 2: C_alpha ⊆ Q — every configuration with exactly alpha
  // positives must literally be a quorum.
  assert(n <= 24);
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    if (__builtin_popcountll(mask) != alpha) continue;
    Configuration config(n, mask);
    if (!q.contains_quorum(config.as_signed_set()))
      return "configuration " + config.as_signed_set().to_string() +
             " in C_alpha is not a quorum";
  }
  return std::nullopt;
}

std::pair<SignedSet, SignedSet> theorem24_witnesses(int n, int alpha) {
  assert(n >= 3 * alpha + 1);
  SignedSet from_opt_b(n);
  for (int i = 0; i < 2 * alpha; ++i) from_opt_b.add_positive(i);

  // Paper indices: {-2, ..., -(n-alpha-1), (n-alpha), ..., n}.
  SignedSet from_opt_c(n);
  for (int paper = 2; paper <= n - alpha - 1; ++paper)
    from_opt_c.add_negative(paper - 1);
  for (int paper = n - alpha; paper <= n; ++paper)
    from_opt_c.add_positive(paper - 1);
  return {from_opt_b, from_opt_c};
}

}  // namespace sqs
