// Structure-of-arrays batch evaluation (the "vectorized batch probe
// kernels" rung of ROADMAP.md; see DESIGN.md §3.12).
//
// A WorldBatch holds T Monte Carlo trials over an n-server universe in
// column-major bit-sliced form: trial t's up/down (or reachability) bit for
// server s lives in bit (t mod 64) of lane word (t/64, s). One pass over a
// lane word therefore evaluates 64 trials at once — population-count
// ladders for threshold-style acceptance, frontier BFS for Paths.
//
// The batch kernels are bit-identity replacements for the scalar loops, not
// approximations. The contract that makes that hold:
//
//   * Sampling draws the chunk rng in EXACTLY the scalar order (trial-major,
//     server-minor) into per-trial row masks, then flips rows into columns
//     with a 64x64 bit transpose. The rng stream consumed by
//     BatchPolicy::kScalar, kBatched, and kDifferential is identical, so
//     estimates stay bit-identical at any thread count and batch width.
//   * accepts_batch(worlds, out) must satisfy out[t] == accepts(world t)
//     for every trial. BatchPolicy::kDifferential re-runs the scalar oracle
//     per trial and throws std::runtime_error on the first disagreement.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/signed_set.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace sqs {

class QuorumFamily;
class WorkerScratch;
struct TrialContext;

// Number of trials packed per lane word.
inline constexpr std::uint64_t kBatchLaneBits = 64;

// Row words needed to hold one trial's n server bits.
inline std::size_t batch_row_words(int n) {
  return (static_cast<std::size_t>(n) + kBatchLaneBits - 1) / kBatchLaneBits;
}

// T trials x n servers of one bit each, stored lane-word-major: the n
// column words of trial-word w are contiguous (`lanes(w)[s]`), which is the
// access pattern of every batch kernel (ladder adds, frontier BFS, and the
// row<->column transposes).
class WorldBatch {
 public:
  WorldBatch() = default;

  // Re-targets to n servers x num_trials trials, all bits clear, reusing
  // the word storage (the scratch-arena reuse idiom of Bitset::reshape).
  void reshape(int n, std::uint64_t num_trials) {
    assert(n >= 0);
    n_ = n;
    trials_ = num_trials;
    lane_words_ = static_cast<std::size_t>(
        (num_trials + kBatchLaneBits - 1) / kBatchLaneBits);
    words_.assign(lane_words_ * static_cast<std::size_t>(n), 0);
  }

  int universe_size() const { return n_; }
  std::uint64_t num_trials() const { return trials_; }
  std::size_t num_lane_words() const { return lane_words_; }

  // All-ones for full lane words; the ragged tail keeps only live trials.
  std::uint64_t lane_mask(std::size_t w) const {
    assert(w < lane_words_);
    const std::uint64_t live = trials_ - w * kBatchLaneBits;
    return live >= kBatchLaneBits ? ~0ull : (~0ull >> (kBatchLaneBits - live));
  }

  // The n column words of lane word w; lanes(w)[s] is server s's 64 trials.
  const std::uint64_t* lanes(std::size_t w) const {
    assert(w < lane_words_);
    return words_.data() + w * static_cast<std::size_t>(n_);
  }
  std::uint64_t* lanes(std::size_t w) {
    assert(w < lane_words_);
    return words_.data() + w * static_cast<std::size_t>(n_);
  }

  bool test(std::uint64_t trial, int server) const {
    assert(trial < trials_ && server >= 0 && server < n_);
    return (lanes(trial / kBatchLaneBits)[server] >>
            (trial % kBatchLaneBits)) & 1u;
  }

  void set(std::uint64_t trial, int server) {
    assert(trial < trials_ && server >= 0 && server < n_);
    lanes(trial / kBatchLaneBits)[server] |=
        1ull << (trial % kBatchLaneBits);
  }

  // Loads up to 64 trial rows into lane word `w` via 64x64 block
  // transposes. `rows` is row-major scalar-draw-order staging:
  // rows[r * batch_row_words(n) + rw] holds servers [rw*64, rw*64+64) of
  // trial w*64+r. Rows beyond `count` are treated as absent (their lanes
  // stay clear) — the ragged-tail case.
  void load_rows(std::size_t w, const std::uint64_t* rows, std::size_t count);

  // Writes trial t's row back into a Configuration (up = bit set): the
  // inverse transpose the differential oracle and the default
  // accepts_batch fallback use.
  void extract_trial(std::uint64_t t, Configuration& out) const;

 private:
  int n_ = 0;
  std::uint64_t trials_ = 0;
  std::size_t lane_words_ = 0;
  std::vector<std::uint64_t> words_;
};

// --- bit-sliced lane counters -------------------------------------------
//
// planes[j] holds bit j of a 64-lane vertical counter; num_planes planes
// count up to 2^num_planes - 1 per lane. Used by the threshold ladders and
// the batched OPT_d probe walks.

// planes += w (per lane, ripple carry). The caller sizes num_planes so the
// counter cannot overflow (counts are bounded by the universe size);
// asserted in debug builds.
inline void lane_counter_add(std::uint64_t* planes, int num_planes,
                             std::uint64_t w) {
  std::uint64_t carry = w;
  for (int j = 0; j < num_planes && carry != 0; ++j) {
    const std::uint64_t t = planes[j] & carry;
    planes[j] ^= carry;
    carry = t;
  }
  assert(carry == 0 && "lane counter overflow: too few planes");
}

// Lanes whose counter is >= c (bit-sliced borrow subtraction). Exact for
// counter values and c below 2^num_planes; a c beyond that range is simply
// unreachable and yields 0.
inline std::uint64_t lane_counter_at_least(const std::uint64_t* planes,
                                           int num_planes, std::uint64_t c) {
  if (num_planes < 64 && (c >> num_planes) != 0) return 0;
  std::uint64_t borrow = 0;
  for (int j = 0; j < num_planes; ++j) {
    const std::uint64_t a = planes[j];
    const std::uint64_t b = ((c >> j) & 1u) ? ~0ull : 0ull;
    borrow = (~a & (b | borrow)) | (a & b & borrow);
  }
  return ~borrow;
}

// Planes needed to count to n without overflow (2^planes > n).
inline int lane_counter_planes(int n) {
  int planes = 1;
  while ((1ll << planes) <= n) ++planes;
  return planes;
}

// --- batch kernels -------------------------------------------------------

// Fills `out` with num_trials configurations where each server is up with
// probability 1-p, drawing `rng` in exactly the scalar order of
// availability_mc_chunk (per trial, per server: up iff !rng.bernoulli(p)).
void sample_worlds_into(int n, double p, std::uint64_t num_trials, Rng& rng,
                        WorkerScratch& scratch, WorldBatch& out);

// bit t of out = [number of up servers in trial t >= k] — the popcount
// ladder shared by every threshold-style family (OPT_a, OPT_d acceptance,
// Threshold/Majority, compositions). out is reshaped to num_trials.
void batch_count_at_least(const WorldBatch& worlds, int k, Bitset& out);

// The batched/differential body of availability_mc_chunk: sample the
// chunk's worlds in scalar draw order, evaluate accepts_batch, and (under
// kDifferential) replay the scalar oracle per trial, throwing
// std::runtime_error on the first mismatched trial.
void availability_mc_chunk_batched(const QuorumFamily& family, double p,
                                   const TrialContext& ctx, Rng& rng,
                                   std::int64_t& live);

}  // namespace sqs
