// The paper's SQS constructions.
//
// Explicit builders (exponential; for small n, tests, and optimality audits):
//   * opt_a_explicit  — Fig. 2: all configurations with >= alpha positives.
//   * opt_b_explicit  — Theorem 22: {1..2alpha} added to OPT_a.
//   * hole_explicit   — the HOLE family: |S+| = alpha+1, |S| = n-1, one
//                       server entirely absent.
//   * opt_c_explicit  — Theorem 23: HOLE ∪ OPT_a.
//   * lad_explicit / lada_explicit / ladb_explicit / opt_d_explicit —
//     Fig. 4's prefix layers and their union.
//
// Implicit families (scale to large n):
//   * OptAFamily — optimal availability (Theorem 16); closed-form
//     availability; probes everything (quorums have size n).
//   * OptDFamily — same availability, expected probes < 2alpha/(1-p)
//     (Theorem 35) via the sequential strategy with the ServerProbe stop
//     rules of Definition 26.

#pragma once

#include <memory>
#include <vector>

#include "core/explicit_sqs.h"
#include "core/quorum_family.h"

namespace sqs {

ExplicitSqs opt_a_explicit(int n, int alpha);
ExplicitSqs opt_b_explicit(int n, int alpha);
ExplicitSqs hole_explicit(int n, int alpha);
ExplicitSqs opt_c_explicit(int n, int alpha);

// LAD_i: all full sign assignments over the prefix {1..i} (Fig. 4).
std::vector<SignedSet> lad_explicit(int n, int i);
// LADA_i: members of LAD_i with at least 2 alpha positives (2a <= i <= n-a).
std::vector<SignedSet> lada_explicit(int n, int i, int alpha);
// LADB_i: members of LAD_i with at least n + alpha - i positives
// (n-a+1 <= i <= n).
std::vector<SignedSet> ladb_explicit(int n, int i, int alpha);
ExplicitSqs opt_d_explicit(int n, int alpha);

// OPT_a as a scalable family: accepts C iff |C+| >= alpha.
class OptAFamily : public QuorumFamily {
 public:
  OptAFamily(int n, int alpha);

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_; }
  bool is_strict() const override { return false; }
  bool accepts(const Configuration& config) const override;
  // Popcount ladder: |C+| >= alpha across 64 trials per word pass.
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override { return n_; }
  // Closed form: P[Bin(n, 1-p) >= alpha].
  double availability(double p) const override;
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;

 private:
  int n_;
  int alpha_;
};

// OPT_d as a scalable family. Acceptance (and hence availability) is
// identical to OPT_a (Theorem 34); the probe strategy stops as early as the
// ServerProbe rules allow:
//   acquired when  pos >= 2 alpha                (LADA layer)
//   acquired when  pos >= n + alpha - i          (LADB layer, i probes done)
//   failed   when  neg >= n + 1 - alpha          (no alpha live servers left)
class OptDFamily : public QuorumFamily {
 public:
  OptDFamily(int n, int alpha);

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_; }
  bool is_strict() const override { return false; }
  bool accepts(const Configuration& config) const override;
  // Same acceptance set as OPT_a (Theorem 34), same popcount ladder.
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override { return 2 * alpha_; }
  double availability(double p) const override;
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;

  // The probe order is a parameter (Sect. 6.3's rotation trick for
  // per-object load balancing): order[j] is the j-th server probed. All
  // clients of one object must share the order for Theorem 9 to apply.
  void set_probe_order(std::vector<int> order);
  const std::vector<int>& probe_order() const { return order_; }

 private:
  int n_;
  int alpha_;
  std::vector<int> order_;
};

// The sequential OPT_d probe strategy, exposed directly so probe-complexity
// analyses can instantiate it with explicit parameters.
class OptDSequentialStrategy : public ProbeStrategy {
 public:
  OptDSequentialStrategy(int n, int alpha, std::vector<int> order);

  void reset(Rng* rng) override;
  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }
  int next_server() const override { return order_[static_cast<std::size_t>(step_)]; }
  void observe(int server, bool reached) override;
  SignedSet acquired_quorum() const override { return observed_; }
  void acquired_quorum_into(SignedSet& out) const override { out = observed_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return false; }

 private:
  int n_;
  int alpha_;
  std::vector<int> order_;
  SignedSet observed_;
  int step_ = 0;
  int pos_ = 0;
  int neg_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace sqs
