#include "core/quorum_family.h"

#include "core/batch.h"
#include "runtime/run_trials.h"

namespace sqs {

double QuorumFamily::availability(double p) const {
  if (universe_size() <= 24) return availability_exact_enumeration(p);
  return availability_monte_carlo(p);
}

double QuorumFamily::availability_exact_enumeration(double p) const {
  const int n = universe_size();
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Configuration config(n, mask);
    if (accepts(config)) total += config.probability(p);
  }
  return total;
}

void availability_mc_chunk(const QuorumFamily& family, double p,
                           const TrialContext& ctx, Rng& rng,
                           std::int64_t& live) {
  if (ctx.batch != BatchPolicy::kScalar) {
    // Batched / differential: identical rng draw order (sample-then-
    // transpose), identical live count — see core/batch.h.
    availability_mc_chunk_batched(family, p, ctx, rng, live);
    return;
  }
  const int n = family.universe_size();
  // One pooled configuration per chunk; every trial assigns all n bits, so
  // no inter-trial clearing is needed and the draw order is unchanged.
  Borrowed<Configuration> config = ctx.scratch().borrow<Configuration>();
  config->reshape(n);
  for (std::uint64_t t = ctx.chunk.begin; t < ctx.chunk.end; ++t) {
    for (int i = 0; i < n; ++i) config->set_up(i, !rng.bernoulli(p));
    if (family.accepts(*config)) ++live;
  }
}

double QuorumFamily::availability_monte_carlo(double p, int samples,
                                              std::uint64_t seed) const {
  // Sharded over the trial runtime: chunk c draws its configurations from
  // Rng(seed).split(c) and the live counts are summed in chunk order, so
  // the estimate is identical for any SQS_THREADS value.
  const std::int64_t live = run_trial_chunks(
      static_cast<std::uint64_t>(samples), Rng(seed), std::int64_t{0},
      [&](std::int64_t& acc, const TrialContext& ctx, Rng& rng) {
        availability_mc_chunk(*this, p, ctx, rng, acc);
      },
      [](std::int64_t& total, std::int64_t part) { total += part; });
  return static_cast<double>(live) / static_cast<double>(samples);
}

}  // namespace sqs
