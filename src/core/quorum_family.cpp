#include "core/quorum_family.h"

namespace sqs {

double QuorumFamily::availability(double p) const {
  if (universe_size() <= 24) return availability_exact_enumeration(p);
  return availability_monte_carlo(p, /*samples=*/200000, /*seed=*/0xa5a5a5a5ull);
}

double QuorumFamily::availability_exact_enumeration(double p) const {
  const int n = universe_size();
  double total = 0.0;
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Configuration config(n, mask);
    if (accepts(config)) total += config.probability(p);
  }
  return total;
}

double QuorumFamily::availability_monte_carlo(double p, int samples,
                                              std::uint64_t seed) const {
  const int n = universe_size();
  Rng rng(seed);
  int live = 0;
  for (int s = 0; s < samples; ++s) {
    Configuration config(Bitset(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) config.set_up(i, !rng.bernoulli(p));
    if (accepts(config)) ++live;
  }
  return static_cast<double>(live) / static_cast<double>(samples);
}

}  // namespace sqs
