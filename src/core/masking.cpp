#include "core/masking.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <vector>

#include "core/batch.h"

#include "util/binomial.h"

namespace sqs {

int masking_threshold(int n, int b) {
  assert(b >= 0 && n >= 2 * b + 1);
  // Smallest q with 2q - n >= 2b + 1: q = ceil((n + 2b + 1) / 2).
  return (n + 2 * b + 2) / 2;
}

// --- MaskingThresholdFamily ---

MaskingThresholdFamily::MaskingThresholdFamily(int n, int b)
    : n_(n), threshold_(masking_threshold(n, b)), b_(b) {
  assert(threshold_ <= n_);
}

std::string MaskingThresholdFamily::name() const {
  return "MaskingThreshold(n=" + std::to_string(n_) +
         ",b=" + std::to_string(b_) + ")";
}

bool MaskingThresholdFamily::accepts(const Configuration& config) const {
  return config.num_up() >= static_cast<std::size_t>(threshold_);
}

void MaskingThresholdFamily::accepts_batch(const WorldBatch& worlds,
                                           Bitset& out) const {
  batch_count_at_least(worlds, threshold_, out);
}

double MaskingThresholdFamily::availability(double p) const {
  return binom_tail_geq(n_, threshold_, 1.0 - p);
}

namespace {

// Shuffled-order threshold acquisition (the same shape as uqs/majority's
// strategy): the reached servers form the quorum; failed probes are wasted
// probes that still count toward load.
class MaskingThresholdStrategy : public ProbeStrategy {
 public:
  MaskingThresholdStrategy(int n, int threshold)
      : n_(n), threshold_(threshold) {
    order_.resize(static_cast<std::size_t>(n_));
    std::iota(order_.begin(), order_.end(), 0);
    reset(nullptr);
  }

  void reset(Rng* rng) override {
    if (rng != nullptr) std::shuffle(order_.begin(), order_.end(), *rng);
    quorum_.reshape(n_);
    step_ = 0;
    pos_ = 0;
    status_ = ProbeStatus::kInProgress;
  }

  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }
  int next_server() const override {
    return order_[static_cast<std::size_t>(step_)];
  }

  void observe(int server, bool reached) override {
    assert(status_ == ProbeStatus::kInProgress);
    if (reached) {
      quorum_.add_positive(server);
      ++pos_;
    }
    ++step_;
    if (pos_ >= threshold_) {
      status_ = ProbeStatus::kAcquired;
    } else if (pos_ + (n_ - step_) < threshold_) {
      status_ = ProbeStatus::kNoQuorum;
    }
  }

  SignedSet acquired_quorum() const override { return quorum_; }
  void acquired_quorum_into(SignedSet& out) const override { out = quorum_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return true; }

 private:
  int n_;
  int threshold_;
  std::vector<int> order_;
  SignedSet quorum_{0};
  int step_ = 0;
  int pos_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> MaskingThresholdFamily::make_probe_strategy()
    const {
  return std::make_unique<MaskingThresholdStrategy>(n_, threshold_);
}

// --- MaskingOptAFamily ---

MaskingOptAFamily::MaskingOptAFamily(int n, int alpha, int b)
    : n_(n),
      requested_alpha_(alpha),
      alpha_m_(std::max(alpha, masking_threshold(n, b))),
      b_(b) {
  assert(alpha >= 1 && b >= 0 && n >= 2 * b + 1);
  assert(alpha_m_ <= n_);
}

std::string MaskingOptAFamily::name() const {
  return "MaskingOPT_a(n=" + std::to_string(n_) +
         ",a=" + std::to_string(requested_alpha_) +
         ",b=" + std::to_string(b_) + ")";
}

bool MaskingOptAFamily::accepts(const Configuration& config) const {
  return config.num_up() >= static_cast<std::size_t>(alpha_m_);
}

void MaskingOptAFamily::accepts_batch(const WorldBatch& worlds,
                                      Bitset& out) const {
  batch_count_at_least(worlds, alpha_m_, out);
}

double MaskingOptAFamily::availability(double p) const {
  return binom_tail_geq(n_, alpha_m_, 1.0 - p);
}

namespace {

// OPT_a-style acquisition at threshold `accept`: probe all n servers in
// index order, acquire the full observed configuration iff it holds at
// least `accept` positives; fail as soon as that is impossible.
class MaskingOptAStrategy : public ProbeStrategy {
 public:
  MaskingOptAStrategy(int n, int accept) : n_(n), accept_(accept) {
    reset(nullptr);
  }

  void reset(Rng* /*rng*/) override {
    observed_.reshape(n_);
    step_ = 0;
    pos_ = 0;
    status_ = ProbeStatus::kInProgress;
  }

  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }
  int next_server() const override { return step_; }

  void observe(int server, bool reached) override {
    assert(server == step_);
    (void)server;
    if (reached) {
      observed_.add_positive(step_);
      ++pos_;
    } else {
      observed_.add_negative(step_);
    }
    ++step_;
    const int neg = step_ - pos_;
    if (neg > n_ - accept_) {
      status_ = ProbeStatus::kNoQuorum;
    } else if (step_ == n_) {
      status_ =
          pos_ >= accept_ ? ProbeStatus::kAcquired : ProbeStatus::kNoQuorum;
    }
  }

  SignedSet acquired_quorum() const override { return observed_; }
  void acquired_quorum_into(SignedSet& out) const override { out = observed_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return false; }

 private:
  int n_;
  int accept_;
  SignedSet observed_{0};
  int step_ = 0;
  int pos_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> MaskingOptAFamily::make_probe_strategy() const {
  return std::make_unique<MaskingOptAStrategy>(n_, alpha_m_);
}

// --- MaskingCompositionFamily ---

namespace {

int masking_comp_alpha(int k, int n, int alpha, int b) {
  const int q_in = masking_threshold(k, b);
  int a = std::max(alpha, masking_threshold(n, b));
  a = std::max(a, n + 2 * b + 1 - q_in);
  return a;
}

}  // namespace

MaskingCompositionFamily::MaskingCompositionFamily(int k, int n, int alpha,
                                                   int b)
    : k_(k),
      n_(n),
      q_in_(masking_threshold(k, b)),
      alpha_m_(masking_comp_alpha(k, n, alpha, b)),
      b_(b),
      inner_(k, b) {
  assert(alpha >= 1 && b >= 0);
  assert(2 * b + 1 <= k_ && k_ <= n_);
  assert(alpha_m_ <= n_ && "inner quorum too small to mask b liars at n");
}

std::string MaskingCompositionFamily::name() const {
  return "MaskingComp(k=" + std::to_string(k_) + ",n=" + std::to_string(n_) +
         ",a=" + std::to_string(alpha_m_) + ",b=" + std::to_string(b_) + ")";
}

bool MaskingCompositionFamily::accepts(const Configuration& config) const {
  if (config.num_up() >= static_cast<std::size_t>(alpha_m_)) return true;
  int up_inner = 0;
  for (int i = 0; i < k_; ++i) up_inner += config.is_up(i) ? 1 : 0;
  return up_inner >= q_in_;
}

double MaskingCompositionFamily::availability(double p) const {
  // Condition on j = up servers among the inner k: the inner branch accepts
  // outright at j >= q_in; otherwise the tail needs alpha_m - j of the
  // remaining n-k servers.
  const double u = 1.0 - p;
  const std::vector<double> pmf = binom_pmf_vector(k_, u);
  double total = 0.0;
  for (int j = 0; j <= k_; ++j) {
    const double tail =
        j >= q_in_ ? 1.0 : binom_tail_geq(n_ - k_, alpha_m_ - j, u);
    total += pmf[static_cast<std::size_t>(j)] * tail;
  }
  return total;
}

namespace {

// Two-phase masking composition acquisition. Phase 1 delegates to the
// inner masking threshold strategy over {0..k-1}; if it acquires, its
// reached set (widened to n) is the quorum. On inner failure, phase 2
// sweeps every not-yet-probed server in index order (the inner strategy
// may have stopped early, so the sweep starts at 0 and skips probed
// slots), counting every positive observed so far, acquiring the full
// observed configuration at alpha_m positives.
class MaskingCompositionStrategy : public ProbeStrategy {
 public:
  MaskingCompositionStrategy(const QuorumFamily* inner, int k, int n,
                             int alpha_m)
      : k_(k), n_(n), alpha_m_(alpha_m), inner_(inner->make_probe_strategy()) {
    reset(nullptr);
  }

  void reset(Rng* rng) override {
    inner_->reset(rng);
    observed_.reshape(n_);
    quorum_.reshape(n_);
    probed_.assign(static_cast<std::size_t>(n_), false);
    phase_ = 1;
    next_tail_ = 0;
    total_pos_ = 0;
    num_probed_ = 0;
    status_ = ProbeStatus::kInProgress;
    sync_with_inner();
  }

  int universe_size() const override { return n_; }
  ProbeStatus status() const override { return status_; }

  int next_server() const override {
    assert(status_ == ProbeStatus::kInProgress);
    return phase_ == 1 ? inner_->next_server() : next_tail_;
  }

  void observe(int server, bool reached) override {
    assert(status_ == ProbeStatus::kInProgress);
    assert(!probed_[static_cast<std::size_t>(server)]);
    probed_[static_cast<std::size_t>(server)] = true;
    ++num_probed_;
    if (reached) {
      observed_.add_positive(server);
      ++total_pos_;
    } else {
      observed_.add_negative(server);
    }
    if (phase_ == 1) {
      assert(server < k_);
      inner_->observe(server, reached);
      sync_with_inner();
    } else {
      assert(server == next_tail_);
      settle_tail();
    }
  }

  SignedSet acquired_quorum() const override { return quorum_; }
  void acquired_quorum_into(SignedSet& out) const override { out = quorum_; }
  bool is_adaptive() const override { return true; }
  bool is_randomized() const override { return inner_->is_randomized(); }

 private:
  void sync_with_inner() {
    switch (inner_->status()) {
      case ProbeStatus::kInProgress:
        break;
      case ProbeStatus::kAcquired: {
        const SignedSet inner_q = inner_->acquired_quorum();
        quorum_.reshape(n_);
        inner_q.positive().for_each([&](std::size_t i) {
          quorum_.add_positive(static_cast<int>(i));
        });
        inner_q.negative().for_each([&](std::size_t i) {
          quorum_.add_negative(static_cast<int>(i));
        });
        status_ = ProbeStatus::kAcquired;
        break;
      }
      case ProbeStatus::kNoQuorum:
        phase_ = 2;
        settle_tail();
        break;
    }
  }

  void settle_tail() {
    if (total_pos_ >= alpha_m_) {
      quorum_ = observed_;
      status_ = ProbeStatus::kAcquired;
      return;
    }
    const int remaining = n_ - num_probed_;
    if (total_pos_ + remaining < alpha_m_) {
      status_ = ProbeStatus::kNoQuorum;
      return;
    }
    while (next_tail_ < n_ && probed_[static_cast<std::size_t>(next_tail_)])
      ++next_tail_;
    assert(next_tail_ < n_ && "remaining > 0 implies an unprobed server");
  }

  int k_;
  int n_;
  int alpha_m_;
  std::unique_ptr<ProbeStrategy> inner_;
  SignedSet observed_{0};
  SignedSet quorum_{0};
  std::vector<bool> probed_;
  int phase_ = 1;
  int next_tail_ = 0;
  int total_pos_ = 0;
  int num_probed_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> MaskingCompositionFamily::make_probe_strategy()
    const {
  return std::make_unique<MaskingCompositionStrategy>(&inner_, k_, n_,
                                                      alpha_m_);
}

}  // namespace sqs
