#include "core/composition.h"

#include <cassert>
#include <optional>
#include <vector>

#include "core/batch.h"

#include "util/binomial.h"

namespace sqs {

CompositionFamily::CompositionFamily(std::shared_ptr<const QuorumFamily> uq,
                                     int n, int alpha)
    : uq_(std::move(uq)), k_(uq_->universe_size()), n_(n), alpha_(alpha) {
  assert(uq_->is_strict() && "composition input must be an unsigned QS");
  assert(k_ <= n_);
  assert(uq_->min_quorum_size() >= 2 * alpha_ &&
         "Definition 40 requires every UQ quorum to have size >= 2 alpha");
}

std::string CompositionFamily::name() const {
  return uq_->name() + "+OPT_a(n=" + std::to_string(n_) +
         ",a=" + std::to_string(alpha_) + ")";
}

bool CompositionFamily::accepts(const Configuration& config) const {
  // Every UQ or LADC quorum needs >= 2 alpha >= alpha live servers, and
  // OPT_a ⊆ the family, so acceptance reduces to OPT_a's predicate.
  return config.num_up() >= static_cast<std::size_t>(alpha_);
}

void CompositionFamily::accepts_batch(const WorldBatch& worlds,
                                      Bitset& out) const {
  batch_count_at_least(worlds, alpha_, out);
}

double CompositionFamily::availability(double p) const {
  return binom_tail_geq(n_, alpha_, 1.0 - p);
}

namespace {

// Widens a signed set over the inner universe {0..k-1} to {0..n-1}.
SignedSet widen(const SignedSet& inner, int n) {
  SignedSet out(n);
  inner.positive().for_each([&](std::size_t i) { out.add_positive(static_cast<int>(i)); });
  inner.negative().for_each([&](std::size_t i) { out.add_negative(static_cast<int>(i)); });
  return out;
}

class CompositionStrategy : public ProbeStrategy {
 public:
  CompositionStrategy(const QuorumFamily* uq, int k, int n, int alpha)
      : uq_(uq), k_(k), n_(n), alpha_(alpha), inner_(uq->make_probe_strategy()) {
    reset(nullptr);
  }

  void reset(Rng* rng) override {
    inner_->reset(rng);
    observed_ = SignedSet(n_);
    results_.assign(static_cast<std::size_t>(n_), std::nullopt);
    phase_ = 1;
    prefix_idx_ = 0;
    prefix_pos_ = 0;
    total_pos_ = 0;
    quorum_ = SignedSet(n_);
    status_ = ProbeStatus::kInProgress;
    sync_with_inner();
  }

  int universe_size() const override { return n_; }

  ProbeStatus status() const override { return status_; }

  int next_server() const override {
    assert(status_ == ProbeStatus::kInProgress);
    return phase_ == 1 ? inner_->next_server() : prefix_idx_;
  }

  void observe(int server, bool reached) override {
    assert(status_ == ProbeStatus::kInProgress);
    assert(!results_[static_cast<std::size_t>(server)].has_value());
    results_[static_cast<std::size_t>(server)] = reached;
    if (reached) {
      observed_.add_positive(server);
      ++total_pos_;
    } else {
      observed_.add_negative(server);
    }
    if (phase_ == 1) {
      assert(server < k_);
      inner_->observe(server, reached);
      sync_with_inner();
    } else {
      advance_prefix();
    }
  }

  SignedSet acquired_quorum() const override { return quorum_; }
  bool is_adaptive() const override { return true; }
  bool is_randomized() const override { return inner_->is_randomized(); }

 private:
  void sync_with_inner() {
    switch (inner_->status()) {
      case ProbeStatus::kInProgress:
        break;
      case ProbeStatus::kAcquired:
        quorum_ = widen(inner_->acquired_quorum(), n_);
        status_ = ProbeStatus::kAcquired;
        break;
      case ProbeStatus::kNoQuorum:
        phase_ = 2;
        advance_prefix();
        break;
    }
  }

  // Consumes every already-probed server at the head of the index order;
  // stops at the first unprobed index (the next probe) or terminates.
  void advance_prefix() {
    while (prefix_idx_ < n_ && results_[static_cast<std::size_t>(prefix_idx_)].has_value()) {
      if (*results_[static_cast<std::size_t>(prefix_idx_)]) ++prefix_pos_;
      ++prefix_idx_;
      if (prefix_pos_ >= k_) {
        // The contiguous signed prefix is a LADC quorum (exactly k
        // positives: the counter steps by one per server).
        quorum_ = SignedSet(n_);
        for (int i = 0; i < prefix_idx_; ++i) {
          if (*results_[static_cast<std::size_t>(i)]) {
            quorum_.add_positive(i);
          } else {
            quorum_.add_negative(i);
          }
        }
        status_ = ProbeStatus::kAcquired;
        return;
      }
    }
    if (prefix_idx_ >= n_) {
      // Phase 3: all servers probed; fall back to OPT_a.
      if (total_pos_ >= alpha_) {
        quorum_ = observed_;
        status_ = ProbeStatus::kAcquired;
      } else {
        status_ = ProbeStatus::kNoQuorum;
      }
    }
  }

  const QuorumFamily* uq_;
  int k_;
  int n_;
  int alpha_;
  std::unique_ptr<ProbeStrategy> inner_;
  SignedSet observed_{0};
  SignedSet quorum_{0};
  std::vector<std::optional<bool>> results_;
  int phase_ = 1;
  int prefix_idx_ = 0;
  int prefix_pos_ = 0;
  int total_pos_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> CompositionFamily::make_probe_strategy() const {
  return std::make_unique<CompositionStrategy>(uq_.get(), k_, n_, alpha_);
}

}  // namespace sqs
