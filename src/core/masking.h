// Masking-quorum variants (Malkhi–Reiter–Wool, "The Load and Availability
// of Byzantine Quorum Systems") of the repo's three workhorse families.
//
// A masking quorum system tolerates b *lying* replicas: any two quorums
// must intersect in >= 2b+1 servers, so the correct servers in the
// intersection (at least b+1 of them) outvote the at most b liars and a
// reader can always identify a genuinely written value by taking the
// highest-timestamped (ts, value) pair vouched for by b+1 replies.
//
// The paper's signed machinery trades deterministic intersection for
// availability under silent faults; lies break that trade, so the masking
// variants here buy the 2b+1 overlap back by raising the acceptance
// threshold:
//
//   threshold:    q >= ceil((n + 2b + 1) / 2)      (2q - n >= 2b + 1)
//   OPT_a:        alpha_m = max(alpha, that q)     (2 alpha_m - n >= 2b+1)
//   composition:  masking UQ over {0..k-1} with threshold q_in, plus an
//                 OPT_a tail with alpha_m >= n + 2b + 1 - q_in so the
//                 cross pair (inner quorum, full configuration) still
//                 overlaps in 2b+1; the LADC cushion is dropped because a
//                 deep cushion quorum can miss the inner universe entirely.
//
// Availability floors stay exact: every variant keeps a closed-form
// binomial availability (the composition's is a small DP over the inner
// universe), which is what the chaos harness checks measured availability
// against under a Byzantine fault plan (see mismatch/exact.h for the
// b-liars-discounted floor).

#pragma once

#include <memory>
#include <string>

#include "core/quorum_family.h"

namespace sqs {

// Smallest threshold q with 2q - n >= 2b + 1, i.e. any two q-subsets of n
// servers share at least 2b+1 elements. Requires n >= 2b + 1 (else no
// subset can outvote the liars).
int masking_threshold(int n, int b);

// Threshold family sized for b liars: all subsets of masking_threshold(n,b)
// servers are quorums. Self-contained rather than derived from
// uqs/ThresholdFamily so the masking layer stays inside sqs_core (uqs links
// against core, not the other way around); behaviorally it is a threshold
// system whose strict-majority special case is b = 0.
class MaskingThresholdFamily : public QuorumFamily {
 public:
  MaskingThresholdFamily(int n, int b);

  int threshold() const { return threshold_; }

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return 0; }
  // masking_threshold(n, b) > n/2, so any two quorums intersect: strict.
  bool is_strict() const override { return true; }
  bool accepts(const Configuration& config) const override;
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override { return threshold_; }
  // Closed form: P[Bin(n, 1-p) >= threshold].
  double availability(double p) const override;
  // Randomized non-adaptive: probes a uniformly shuffled order, acquiring
  // at `threshold` successes (the reached servers form the quorum).
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;
  int masking_b() const override { return b_; }

 private:
  int n_;
  int threshold_;
  int b_;
};

// OPT_a with the acceptance threshold raised to alpha_m =
// max(alpha, masking_threshold(n, b)). Quorums are full configurations
// (the strategy probes all n servers, OPT_a style), so two accepted
// configurations share >= 2 alpha_m - n >= 2b+1 positives. alpha() reports
// the effective alpha_m.
class MaskingOptAFamily : public QuorumFamily {
 public:
  MaskingOptAFamily(int n, int alpha, int b);

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_m_; }
  bool is_strict() const override { return false; }
  bool accepts(const Configuration& config) const override;
  void accepts_batch(const WorldBatch& worlds, Bitset& out) const override;
  int min_quorum_size() const override { return n_; }
  // Closed form: P[Bin(n, 1-p) >= alpha_m].
  double availability(double p) const override;
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;
  int masking_b() const override { return b_; }

 private:
  int n_;
  int requested_alpha_;
  int alpha_m_;
  int b_;
};

// Masking composition: a masking threshold UQ over {0..k-1} (quorum size
// q_in = masking_threshold(k, b)) unioned with an OPT_a tail over all n at
// alpha_m = max(alpha, masking_threshold(n, b), n + 2b + 1 - q_in). The
// three pair cases all intersect in >= 2b+1:
//   inner x inner:  2 q_in - k   >= 2b+1  (masking inner)
//   tail  x tail :  2 alpha_m - n >= 2b+1
//   inner x tail :  q_in + alpha_m - n >= 2b+1
// The probe strategy is two-phase: run the inner strategy over {0..k-1};
// on failure keep sweeping k..n-1 (reusing phase-1 observations) until
// alpha_m positives accumulate or too many servers are down.
class MaskingCompositionFamily : public QuorumFamily {
 public:
  // Requires 2b+1 <= k <= n.
  MaskingCompositionFamily(int k, int n, int alpha, int b);

  int inner_universe_size() const { return k_; }
  int inner_threshold() const { return q_in_; }

  std::string name() const override;
  int universe_size() const override { return n_; }
  int alpha() const override { return alpha_m_; }
  bool is_strict() const override { return false; }
  // Accepts iff >= q_in of the first k servers are up, or >= alpha_m of
  // all n are (either branch yields an acquirable quorum).
  bool accepts(const Configuration& config) const override;
  int min_quorum_size() const override { return q_in_; }
  // Exact DP over the inner universe: condition on j = up servers among
  // the first k, then the binomial tail over the remaining n-k.
  double availability(double p) const override;
  std::unique_ptr<ProbeStrategy> make_probe_strategy() const override;
  int masking_b() const override { return b_; }

 private:
  int k_;
  int n_;
  int q_in_;
  int alpha_m_;
  int b_;
  MaskingThresholdFamily inner_;
};

}  // namespace sqs
