#include "core/explicit_sqs.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "core/batch.h"

namespace sqs {

ExplicitSqs::ExplicitSqs(int n, int alpha, std::vector<SignedSet> quorums)
    : n_(n), alpha_(alpha), quorums_(std::move(quorums)) {}

void ExplicitSqs::add_quorum(SignedSet quorum) {
  assert(quorum.universe_size() == n_);
  quorums_.push_back(std::move(quorum));
}

std::optional<SqsViolation> ExplicitSqs::verify() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    // A quorum with no positive element fails Definition 3 against itself.
    if (quorums_[i].positive_count() == 0) return SqsViolation{i, i};
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      if (!SignedSet::compatible(quorums_[i], quorums_[j], alpha_))
        return SqsViolation{i, j};
    }
  }
  return std::nullopt;
}

bool ExplicitSqs::can_add(const SignedSet& candidate) const {
  if (candidate.positive_count() == 0) return false;
  for (const auto& q : quorums_)
    if (!SignedSet::compatible(q, candidate, alpha_)) return false;
  return true;
}

ExplicitSqs ExplicitSqs::acceptance_set() const {
  assert(n_ <= 24 && "acceptance_set enumerates all 2^n configurations");
  ExplicitSqs out(n_, alpha_);
  for (std::uint64_t mask = 0; mask < (1ull << n_); ++mask) {
    Configuration config(n_, mask);
    if (accepts(config)) out.add_quorum(config.as_signed_set());
  }
  return out;
}

bool ExplicitSqs::dominates(const ExplicitSqs& other) const {
  for (const auto& big : other.quorums_) {
    bool covered = false;
    for (const auto& small : quorums_) {
      if (small.is_subset_of(big)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

ExplicitSqs ExplicitSqs::permuted(const std::vector<int>& perm) const {
  ExplicitSqs out(n_, alpha_);
  for (const auto& q : quorums_) out.add_quorum(q.permuted(perm));
  return out;
}

std::optional<std::vector<int>> ExplicitSqs::dominating_permutation(
    const ExplicitSqs& other) const {
  assert(n_ == other.n_);
  assert(n_ <= 8 && "dominating_permutation enumerates all n! permutations");
  std::vector<int> perm(static_cast<std::size_t>(n_));
  std::iota(perm.begin(), perm.end(), 0);
  do {
    if (dominates(other.permuted(perm))) return perm;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return std::nullopt;
}

bool ExplicitSqs::contains_quorum(const SignedSet& quorum) const {
  for (const auto& q : quorums_)
    if (q == quorum) return true;
  return false;
}

bool ExplicitSqs::is_strict() const {
  for (const auto& q : quorums_)
    if (q.negative_count() > 0) return false;
  return true;
}

bool ExplicitSqs::accepts(const Configuration& config) const {
  for (const auto& q : quorums_)
    if (config.accepts(q)) return true;
  return false;
}

void ExplicitSqs::accepts_batch(const WorldBatch& worlds, Bitset& out) const {
  out.reshape(static_cast<std::size_t>(worlds.num_trials()));
  for (std::size_t w = 0; w < worlds.num_lane_words(); ++w) {
    const std::uint64_t mask = worlds.lane_mask(w);
    const std::uint64_t* col = worlds.lanes(w);
    std::uint64_t accept = 0;
    for (const SignedSet& q : quorums_) {
      // Lanes where Q ⊆ C: every +i up, every -i down.
      std::uint64_t lanes = mask & ~accept;
      q.positive().for_each([&](std::size_t s) { lanes &= col[s]; });
      q.negative().for_each([&](std::size_t s) { lanes &= ~col[s]; });
      accept |= lanes;
      if (accept == mask) break;
    }
    out.set_word(w, accept);
  }
}

int ExplicitSqs::min_quorum_size() const {
  int best = n_;
  for (const auto& q : quorums_)
    best = std::min(best, static_cast<int>(q.size()));
  return quorums_.empty() ? 0 : best;
}

double ExplicitSqs::availability(double p) const {
  if (n_ <= 24) return availability_exact_enumeration(p);
  return QuorumFamily::availability(p);
}

namespace {

// Sequential probing with per-step early termination against the explicit
// quorum list. Deterministic and non-adaptive (fixed index order), so
// Theorem 9 applies to it.
class ExplicitSequentialStrategy : public ProbeStrategy {
 public:
  explicit ExplicitSequentialStrategy(const ExplicitSqs* system)
      : system_(system) {
    reset(nullptr);
  }

  void reset(Rng* /*rng*/) override {
    observed_ = SignedSet(system_->universe_size());
    next_ = 0;
    status_ = ProbeStatus::kInProgress;
    quorum_ = SignedSet(system_->universe_size());
    refresh();
  }

  int universe_size() const override { return system_->universe_size(); }
  ProbeStatus status() const override { return status_; }
  int next_server() const override { return next_; }

  void observe(int server, bool reached) override {
    assert(server == next_);
    if (reached) {
      observed_.add_positive(server);
    } else {
      observed_.add_negative(server);
    }
    ++next_;
    refresh();
  }

  SignedSet acquired_quorum() const override { return quorum_; }
  bool is_adaptive() const override { return false; }
  bool is_randomized() const override { return false; }

 private:
  void refresh() {
    // Acquired as soon as the observed signed prefix contains a quorum.
    for (const auto& q : system_->quorums()) {
      if (q.is_subset_of(observed_)) {
        quorum_ = q;
        status_ = ProbeStatus::kAcquired;
        return;
      }
    }
    // Fail as soon as every quorum is contradicted by some observation.
    bool some_quorum_possible = false;
    for (const auto& q : system_->quorums()) {
      if (!q.positive().intersects(observed_.negative()) &&
          !q.negative().intersects(observed_.positive())) {
        some_quorum_possible = true;
        break;
      }
    }
    if (!some_quorum_possible || next_ >= system_->universe_size()) {
      status_ = ProbeStatus::kNoQuorum;
    }
  }

  const ExplicitSqs* system_;
  SignedSet observed_;
  SignedSet quorum_;
  int next_ = 0;
  ProbeStatus status_ = ProbeStatus::kInProgress;
};

}  // namespace

std::unique_ptr<ProbeStrategy> ExplicitSqs::make_probe_strategy() const {
  return std::make_unique<ExplicitSequentialStrategy>(this);
}

}  // namespace sqs
