#include "analysis/profile.h"

#include <algorithm>
#include <numeric>

#include "util/binomial.h"

namespace sqs {

int AcceptanceProfile::guaranteed_threshold(double tolerance) const {
  const int n = static_cast<int>(probability.size()) - 1;
  int threshold = n + 1;
  for (int k = n; k >= 0; --k) {
    if (probability[static_cast<std::size_t>(k)] >= 1.0 - tolerance) {
      threshold = k;
    } else {
      break;
    }
  }
  return threshold;
}

int AcceptanceProfile::impossible_below(double tolerance) const {
  int last_zero = -1;
  for (std::size_t k = 0; k < probability.size(); ++k) {
    if (probability[k] <= tolerance) {
      last_zero = static_cast<int>(k);
    } else {
      break;
    }
  }
  return last_zero;
}

AcceptanceProfile acceptance_profile(const QuorumFamily& family,
                                     int samples_per_k, Rng rng) {
  const int n = family.universe_size();
  AcceptanceProfile out;
  out.probability.assign(static_cast<std::size_t>(n) + 1, 0.0);

  if (n <= 20) {
    std::vector<long> accepted(static_cast<std::size_t>(n) + 1, 0);
    std::vector<long> total(static_cast<std::size_t>(n) + 1, 0);
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      Configuration config(n, mask);
      const std::size_t k = config.num_up();
      ++total[k];
      if (family.accepts(config)) ++accepted[k];
    }
    for (int k = 0; k <= n; ++k)
      out.probability[static_cast<std::size_t>(k)] =
          static_cast<double>(accepted[static_cast<std::size_t>(k)]) /
          static_cast<double>(total[static_cast<std::size_t>(k)]);
    return out;
  }

  std::vector<int> ids(static_cast<std::size_t>(n));
  for (int k = 0; k <= n; ++k) {
    long accepted = 0;
    for (int s = 0; s < samples_per_k; ++s) {
      // Uniform k-subset via partial Fisher-Yates.
      std::iota(ids.begin(), ids.end(), 0);
      Configuration config(Bitset(static_cast<std::size_t>(n)));
      for (int i = 0; i < k; ++i) {
        const auto j =
            i + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - i)));
        std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
        config.set_up(ids[static_cast<std::size_t>(i)], true);
      }
      if (family.accepts(config)) ++accepted;
    }
    out.probability[static_cast<std::size_t>(k)] =
        static_cast<double>(accepted) / static_cast<double>(samples_per_k);
  }
  return out;
}

double availability_from_profile(const AcceptanceProfile& profile, double p) {
  const int n = static_cast<int>(profile.probability.size()) - 1;
  double total = 0.0;
  for (int k = 0; k <= n; ++k)
    total += binom_pmf(n, k, 1.0 - p) * profile.probability[static_cast<std::size_t>(k)];
  return total;
}

}  // namespace sqs
