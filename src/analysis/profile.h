// Acceptance profiles: P[a live quorum exists | exactly k servers up].
//
// The paper's availability headline is really a statement about this
// profile: OPT_a's is a step function jumping to 1 at k = alpha, majority's
// jumps at (n+1)/2, grid/paths rise smoothly. The profile decomposes
// availability as  Avail(p) = sum_k C(n,k)(1-p)^k p^(n-k) * profile[k],
// and makes "available as long as ANY alpha servers are available" an
// auditable property rather than a formula.

#pragma once

#include <vector>

#include "core/quorum_family.h"
#include "util/rng.h"

namespace sqs {

struct AcceptanceProfile {
  // profile[k] = P[accepts | exactly k up] (over the uniform choice of the
  // k live servers). Exact for n <= 20, sampled otherwise.
  std::vector<double> probability;

  // Smallest k such that profile[j] == 1 for all j >= k (within tolerance):
  // the guaranteed-availability threshold. OPT_a: alpha. Majority: n/2+1.
  int guaranteed_threshold(double tolerance = 1e-9) const;
  // Largest k with profile[k] == 0 (within tolerance): below this the
  // system can never be live.
  int impossible_below(double tolerance = 1e-9) const;
};

// Computes the profile. For n <= 20 every configuration is enumerated
// (exact); otherwise `samples_per_k` uniform k-subsets are drawn per k.
AcceptanceProfile acceptance_profile(const QuorumFamily& family,
                                     int samples_per_k, Rng rng);

// Recombines a profile with the binomial weights; equals availability(p)
// exactly when the profile is exact.
double availability_from_profile(const AcceptanceProfile& profile, double p);

}  // namespace sqs
