#include "analysis/tradeoffs.h"

#include <algorithm>
#include <cmath>

namespace sqs {

double uqs_unavailability_bound_from_load(double p, int n, double load) {
  return std::pow(p, static_cast<double>(n) * load);
}

double uqs_unavailability_bound_from_probes(double p, double probe_complexity) {
  return std::pow(p, probe_complexity);
}

double load_bound_from_probes(double probe_complexity) {
  return probe_complexity > 0.0 ? 1.0 / probe_complexity : 1.0;
}

double sqs_load_lower_bound(int n, int min_quorum_size) {
  const double x = static_cast<double>(min_quorum_size);
  return std::max(x / static_cast<double>(n), 1.0 / x);
}

double sqs_load_floor(int n) {
  return 1.0 / (2.0 * std::sqrt(static_cast<double>(n)));
}

double sqs_load_bound_from_probes(double expected_probes) {
  return expected_probes > 0.0 ? 1.0 / (4.0 * expected_probes) : 1.0;
}

double truncated_probe_availability_ceiling(double p, int alpha) {
  return 1.0 - std::pow(p - p * p, 2.0 * alpha - 1.0);
}

}  // namespace sqs
