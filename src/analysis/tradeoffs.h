// The quantitative tradeoffs the paper is framed around.
//
// For *strict* quorum systems, Naor–Wool's proofs give (Inequalities 1-3):
//   (1)  1 - Avail >= p^(n * Load)
//   (2)  1 - Avail >= p^(ProbeComplexity)
//   (3)  Load      >= 1 / ProbeComplexity
// SQS escapes (1) and (2) — the composition constructions achieve optimal
// availability at probe complexity Theta(alpha) — but (3) survives in the
// form of Theorem 38 / Corollary 39:
//   Load_A >= max(x/n, 1/x)  (x = smallest quorum size)
//   Load >= 1/(2 sqrt n)  and  Load >= 1/(4 PC_e*)  when Avail >= 1/2.

#pragma once

namespace sqs {

// Inequality (1): lower bound on 1-availability of any strict quorum system
// with the given load.
double uqs_unavailability_bound_from_load(double p, int n, double load);

// Inequality (2): lower bound on 1-availability of any strict quorum system
// with the given probe complexity.
double uqs_unavailability_bound_from_probes(double p, double probe_complexity);

// Inequality (3): lower bound on the load of any quorum system with the
// given probe complexity.
double load_bound_from_probes(double probe_complexity);

// Theorem 38: Load_A(Q) >= max(x/n, 1/x) for smallest quorum size x — holds
// for SQS too (negate all negatives and apply the UQS bound).
double sqs_load_lower_bound(int n, int min_quorum_size);

// Corollary 39 (needs Avail >= 0.5): Load >= 1/(2 sqrt n).
double sqs_load_floor(int n);

// Corollary 39: Load >= 1 / (4 PC_e*).
double sqs_load_bound_from_probes(double expected_probes);

// Theorem 25's contrapositive, quantified: any SQS probed with at most
// 2 alpha - 1 probes per acquisition has availability at most
// 1 - (p - p^2)^(2 alpha - 1) regardless of n.
double truncated_probe_availability_ceiling(double p, int alpha);

}  // namespace sqs
