// Per-worker scratch arenas for the trial runtime.
//
// The deterministic runtime (run_trials.h) and the sweep engine
// (src/sweep) execute millions of short chunks; before this layer every
// chunk paid heap allocations for its accumulator storage and for the
// kernel temporaries (probe records, sampled worlds, configurations,
// per-server count buffers). WorkerScratch gives every thread a private
// arena so those allocations happen once per thread and are reused for the
// lifetime of the process:
//
//   * a generic object pool (borrow<T>() / give_object) keyed by type:
//     returned objects keep their internal capacity, so a reused
//     ProbeRecord or Configuration re-sized via reshape() allocates
//     nothing;
//   * a two-level cache for per-server count buffers (take_counts /
//     give_counts): buffers are taken on worker threads but handed back on
//     the merging caller, so the thread-local free list overflows into a
//     small mutex-protected global list that routes them back to workers;
//   * a block-chain bump allocator (arena_allocate / ArenaArray) for the
//     per-call `parts` array of run_trial_chunks and run_sweep: blocks are
//     retained across calls and released LIFO via marks, so nested runs
//     (a chunk kernel that itself calls run_trial_chunks inline) stack
//     naturally.
//
// Determinism: the arena only changes where bytes live. It never draws
// randomness, never reorders the ascending-chunk reduction, and a reused
// object is always reshape()d to the exact observable state a freshly
// constructed one would have — the bit-identity tests of test_runtime /
// test_sweep run unchanged against arena-backed kernels.
//
// Telemetry (all gated on obs::metrics_enabled, see obs/telemetry.h):
//   runtime.arena.cache_hits    takes served from a free list
//   runtime.arena.cache_misses  takes that had to heap-allocate
//   runtime.arena.bytes_reused  capacity bytes served from reuse
//   runtime.arena.block_allocs  bump-arena growth events
// In steady state cache_misses and block_allocs stop moving — asserted by
// tests/test_arena.cpp and visible in BENCH_sweep.json.
//
// Thread safety: a WorkerScratch belongs to exactly one thread
// (for_thread() hands out a thread_local); only the counts overflow list
// is shared, under its own mutex. Borrowed<T> must be destroyed on the
// thread that will reuse the object next — it returns the object to the
// *current* thread's scratch, which is always safe.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sqs {

class WorkerScratch;

// RAII loan of a pooled object: dereferences like a pointer and returns the
// object to the current thread's WorkerScratch on destruction.
template <typename T>
class Borrowed {
 public:
  Borrowed() = default;
  explicit Borrowed(std::unique_ptr<T> obj) : obj_(std::move(obj)) {}
  Borrowed(Borrowed&&) noexcept = default;
  Borrowed& operator=(Borrowed&&) noexcept = default;
  Borrowed(const Borrowed&) = delete;
  Borrowed& operator=(const Borrowed&) = delete;
  ~Borrowed();

  T& operator*() const { return *obj_; }
  T* operator->() const { return obj_.get(); }
  T* get() const { return obj_.get(); }

 private:
  std::unique_ptr<T> obj_;
};

class WorkerScratch {
 public:
  // The calling thread's private scratch (created on first use, retained
  // for the thread's lifetime).
  static WorkerScratch& for_thread();

  WorkerScratch() = default;
  WorkerScratch(const WorkerScratch&) = delete;
  WorkerScratch& operator=(const WorkerScratch&) = delete;

  // --- generic object pool -------------------------------------------------
  // Takes a pooled T (default-constructed on a cold pool). The object's
  // state is whatever the previous user left; callers must reshape/assign
  // every field they read — which the runtime kernels do anyway, because a
  // fresh object needs the same initialization.
  template <typename T>
  std::unique_ptr<T> take_object() {
    ObjectPool<T>& pool = pool_for<T>();
    if (!pool.free.empty()) {
      std::unique_ptr<T> obj = std::move(pool.free.back());
      pool.free.pop_back();
      record_cache_hit(sizeof(T));
      return obj;
    }
    record_cache_miss();
    return std::make_unique<T>();
  }

  template <typename T>
  void give_object(std::unique_ptr<T> obj) {
    if (!obj) return;
    ObjectPool<T>& pool = pool_for<T>();
    if (pool.free.size() < kMaxPooledPerType) pool.free.push_back(std::move(obj));
  }

  // take_object wrapped in RAII; the loan ends on the destroying thread's
  // scratch (see Borrowed).
  template <typename T>
  Borrowed<T> borrow() {
    return Borrowed<T>(take_object<T>());
  }

  // --- per-server count buffers -------------------------------------------
  // Returns a vector of `size` zeroed longs, reusing pooled capacity. The
  // pool is two-level: thread-local first, then a global overflow list —
  // buffers migrate from the merging caller back to the workers through it.
  std::vector<long> take_counts(std::size_t size);
  void give_counts(std::vector<long>&& buf);

  // --- bump arena ----------------------------------------------------------
  struct ArenaMark {
    std::size_t block = 0;
    std::size_t top = 0;
  };

  // Bumps `bytes` (aligned to `align` <= alignof(max_align_t)) off the
  // retained block chain; grows the chain only when every retained block is
  // exhausted. Lifetime is controlled by marks, strictly LIFO.
  void* arena_allocate(std::size_t bytes, std::size_t align);
  ArenaMark arena_mark() const;
  void arena_release(const ArenaMark& mark);

 private:
  template <typename T>
  friend class ArenaArray;

  struct PoolBase {
    virtual ~PoolBase() = default;
  };
  template <typename T>
  struct ObjectPool : PoolBase {
    std::vector<std::unique_ptr<T>> free;
  };

  template <typename T>
  ObjectPool<T>& pool_for() {
    std::unique_ptr<PoolBase>& slot = pools_[std::type_index(typeid(T))];
    if (!slot) slot = std::make_unique<ObjectPool<T>>();
    return static_cast<ObjectPool<T>&>(*slot);
  }

  // Telemetry recording (runtime.arena.*), defined in scratch.cpp so the
  // header does not pull in obs/telemetry.h.
  static void record_cache_hit(std::size_t bytes);
  static void record_cache_miss();
  static void record_block_alloc();

  static constexpr std::size_t kMaxPooledPerType = 32;
  static constexpr std::size_t kMaxLocalCounts = 8;
  static constexpr std::size_t kMinArenaBlock = 1u << 16;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t top = 0;
  };

  std::unordered_map<std::type_index, std::unique_ptr<PoolBase>> pools_;
  std::vector<std::vector<long>> counts_;
  std::vector<Block> blocks_;
  std::size_t current_block_ = 0;
};

template <typename T>
Borrowed<T>::~Borrowed() {
  if (obj_) WorkerScratch::for_thread().give_object(std::move(obj_));
}

// A fixed-size array of T carved out of a WorkerScratch bump arena —
// the pooled replacement for the per-call `std::vector<Acc> parts` of
// run_trial_chunks / run_sweep. Every element is copy-constructed from
// `zero`; destruction runs the element destructors in reverse and releases
// the arena mark (LIFO with any nested ArenaArray).
template <typename T>
class ArenaArray {
 public:
  ArenaArray(WorkerScratch& scratch, std::size_t count, const T& zero)
      : scratch_(&scratch), mark_(scratch.arena_mark()) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned accumulators are not supported");
    data_ = static_cast<T*>(scratch.arena_allocate(count * sizeof(T), alignof(T)));
    try {
      for (; size_ < count; ++size_) new (data_ + size_) T(zero);
    } catch (...) {
      destroy_elements();
      scratch_->arena_release(mark_);
      throw;
    }
  }

  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;

  ~ArenaArray() {
    destroy_elements();
    scratch_->arena_release(mark_);
  }

  std::size_t size() const { return size_; }
  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }

 private:
  void destroy_elements() {
    while (size_ > 0) data_[--size_].~T();
  }

  WorkerScratch* scratch_;
  WorkerScratch::ArenaMark mark_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sqs
