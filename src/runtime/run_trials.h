// Deterministic sharded trial execution.
//
// run_trials / run_trial_chunks split `n_trials` into fixed-size chunks.
// Chunk c covers trials [c*chunk_size, min(n_trials, (c+1)*chunk_size)) and
// draws all of its randomness from Rng base.split(c); partial accumulators
// are merged strictly in ascending chunk order after every chunk completed.
// Which thread executed which chunk therefore never influences the result:
// for a fixed chunk_size the output is bit-identical for 1 thread, N
// threads, and the inline sequential fallback. This is the determinism
// contract every Monte Carlo entry point in the repo is written against
// (see DESIGN.md, "Parallel trial runtime").
//
// Accumulator requirements: copy-constructible (the `zero` argument is the
// per-chunk identity), and merged via a caller-supplied
// merge(Acc& into, Acc&& part). Floating-point merges are deterministic
// because the merge order is fixed — but note they need not equal a single
// unchunked sequential loop, which is why the refactored estimators define
// their published output as the chunked reduction.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace sqs {

namespace runtime_detail {
// Telemetry handles shared by every run_trial_chunks instantiation; the
// handles are resolved once, the per-chunk cost is the recording itself
// (one branch on a relaxed atomic when telemetry is off).
struct ChunkMetrics {
  obs::Counter chunks =
      obs::Registry::instance().counter("runtime.chunks_executed");
  obs::Histogram wall_ns = obs::Registry::instance().histogram(
      "runtime.chunk_wall_ns", obs::pow2_bounds(10, 34));

  static const ChunkMetrics& get() {
    static const ChunkMetrics metrics;
    return metrics;
  }
};
}  // namespace runtime_detail

inline constexpr std::uint64_t kDefaultTrialChunk = 1024;

struct TrialOptions {
  // Total participating threads (caller included); 0 means default_threads().
  int threads = 0;
  // Trials per shard; also the granularity of rng splitting and reduction.
  std::uint64_t chunk_size = kDefaultTrialChunk;
};

struct TrialChunk {
  std::uint64_t index = 0;  // chunk number, the Rng::split argument
  std::uint64_t begin = 0;  // first trial (global index, inclusive)
  std::uint64_t end = 0;    // last trial (global index, exclusive)
};

// Chunk-level entry point for consumers that amortize per-shard setup
// (probe-strategy instances, scratch buffers) across a whole chunk.
// chunk_fn(Acc&, const TrialChunk&, Rng&) runs the chunk's trials against a
// fresh accumulator copied from `zero` and the chunk's private rng.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc run_trial_chunks(std::uint64_t n_trials, const Rng& base, const Acc& zero,
                     ChunkFn&& chunk_fn, MergeFn&& merge,
                     const TrialOptions& opts = {}) {
  const std::uint64_t chunk_size =
      opts.chunk_size > 0 ? opts.chunk_size : kDefaultTrialChunk;
  const std::uint64_t num_chunks = (n_trials + chunk_size - 1) / chunk_size;
  Acc total(zero);
  if (num_chunks == 0) return total;

  std::vector<Acc> parts(static_cast<std::size_t>(num_chunks), zero);
  auto process = [&](std::uint64_t c) {
    TrialChunk tc;
    tc.index = c;
    tc.begin = c * chunk_size;
    tc.end = std::min(n_trials, tc.begin + chunk_size);
    Rng rng = base.split(c);
    if (obs::telemetry_enabled()) {
      const runtime_detail::ChunkMetrics& metrics =
          runtime_detail::ChunkMetrics::get();
      obs::Span span("runtime", "chunk");
      span.arg("chunk", c);
      span.arg("trials", tc.end - tc.begin);
      const std::uint64_t start_ns = obs::trace_now_ns();
      chunk_fn(parts[static_cast<std::size_t>(c)], tc, rng);
      metrics.wall_ns.record(obs::trace_now_ns() - start_ns);
      metrics.chunks.add();
    } else {
      chunk_fn(parts[static_cast<std::size_t>(c)], tc, rng);
    }
  };

  int threads = opts.threads > 0 ? opts.threads : default_threads();
  if (threads > 1 && num_chunks > 1 && !ThreadPool::inside_worker()) {
    ThreadPool::global(threads - 1).for_each_chunk(num_chunks, threads,
                                                   process);
  } else {
    // Sequential / nested fallback: same chunking, same merge order below,
    // hence the same bits.
    for (std::uint64_t c = 0; c < num_chunks; ++c) process(c);
  }

  for (Acc& part : parts) merge(total, std::move(part));
  return total;
}

// Trial-level entry point: per_trial(Acc&, std::uint64_t trial_index, Rng&)
// is called once per trial with the chunk's rng (shared sequentially by the
// trials of one chunk).
template <typename Acc, typename TrialFn, typename MergeFn>
Acc run_trials(std::uint64_t n_trials, const Rng& base, const Acc& zero,
               TrialFn&& per_trial, MergeFn&& merge,
               const TrialOptions& opts = {}) {
  return run_trial_chunks(
      n_trials, base, zero,
      [&](Acc& acc, const TrialChunk& tc, Rng& rng) {
        for (std::uint64_t t = tc.begin; t < tc.end; ++t)
          per_trial(acc, t, rng);
      },
      std::forward<MergeFn>(merge), opts);
}

}  // namespace sqs
