// Deterministic sharded trial execution.
//
// run_trials / run_trial_chunks split `n_trials` into fixed-size chunks.
// Chunk c covers trials [c*chunk_size, min(n_trials, (c+1)*chunk_size)) and
// draws all of its randomness from Rng base.split(c); partial accumulators
// are merged strictly in ascending chunk order after every chunk completed.
// Which thread executed which chunk therefore never influences the result:
// for a fixed chunk_size the output is bit-identical for 1 thread, N
// threads, and the inline sequential fallback. This is the determinism
// contract every Monte Carlo entry point in the repo is written against
// (see DESIGN.md, "Parallel trial runtime").
//
// Accumulator requirements: copy-constructible (the `zero` argument is the
// per-chunk identity), and merged via a caller-supplied
// merge(Acc& into, Acc&& part). Floating-point merges are deterministic
// because the merge order is fixed — but note they need not equal a single
// unchunked sequential loop, which is why the refactored estimators define
// their published output as the chunked reduction.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/scratch.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

namespace sqs {

namespace runtime_detail {
// Telemetry handles shared by every run_trial_chunks instantiation; the
// handles are resolved once, the per-chunk cost is the recording itself
// (one branch on a relaxed atomic when telemetry is off).
struct ChunkMetrics {
  obs::Counter chunks =
      obs::Registry::instance().counter("runtime.chunks_executed");
  obs::Histogram wall_ns = obs::Registry::instance().histogram(
      "runtime.chunk_wall_ns", obs::pow2_bounds(10, 34));

  static const ChunkMetrics& get() {
    static const ChunkMetrics metrics;
    return metrics;
  }
};
}  // namespace runtime_detail

inline constexpr std::uint64_t kDefaultTrialChunk = 1024;

// How a chunk kernel evaluates its trials (see DESIGN.md §3.12):
//   kScalar       — the original one-trial-at-a-time loop (the oracle).
//   kBatched      — structure-of-arrays kernels, 64 trials per word pass.
//   kDifferential — run both and throw std::runtime_error on the first trial
//                   whose batched bit differs from the scalar oracle's.
// Batched kernels draw the chunk rng in exactly the scalar order, so all
// three policies consume identical rng streams and kScalar/kBatched publish
// bit-identical estimates; kDifferential is the proof harness.
enum class BatchPolicy { kScalar, kBatched, kDifferential };

const char* batch_policy_name(BatchPolicy policy);
// Parses "scalar" / "batched" / "differential"; returns false on any other
// spelling and leaves `out` untouched.
bool parse_batch_policy(const std::string& text, BatchPolicy& out);

struct TrialOptions {
  // Total participating threads (caller included); 0 means default_threads().
  int threads = 0;
  // Trials per shard; also the granularity of rng splitting and reduction.
  std::uint64_t chunk_size = kDefaultTrialChunk;
  // Trial evaluation policy, forwarded to every chunk via TrialContext.
  BatchPolicy batch = BatchPolicy::kScalar;
};

struct TrialChunk {
  std::uint64_t index = 0;  // chunk number, the Rng::split argument
  std::uint64_t begin = 0;  // first trial (global index, inclusive)
  std::uint64_t end = 0;    // last trial (global index, exclusive)
};

// What a chunk callback receives: the trial range plus the executing
// thread's scratch arena (always non-null inside the runtime). The arena is
// resolved per chunk on the thread that runs it, never captured from the
// submitting caller.
struct TrialContext {
  TrialChunk chunk;
  WorkerScratch* arena = nullptr;
  // Policy the submitting caller selected; kernels that have no batched
  // implementation simply ignore it and stay scalar.
  BatchPolicy batch = BatchPolicy::kScalar;

  WorkerScratch& scratch() const {
    assert(arena != nullptr);
    return *arena;
  }
};

namespace runtime_detail {
// Chunk callbacks come in two shapes: the arena-aware
// fn(Acc&, const TrialContext&, Rng&) and the original
// fn(Acc&, const TrialChunk&, Rng&). Dispatch at compile time so existing
// callers keep working unchanged.
template <typename Acc, typename ChunkFn>
inline void invoke_chunk(ChunkFn& fn, Acc& acc, const TrialContext& ctx,
                         Rng& rng) {
  if constexpr (std::is_invocable_v<ChunkFn&, Acc&, const TrialContext&,
                                    Rng&>) {
    fn(acc, ctx, rng);
  } else {
    fn(acc, ctx.chunk, rng);
  }
}
}  // namespace runtime_detail

// Chunk-level entry point for consumers that amortize per-shard setup
// (probe-strategy instances, scratch buffers) across a whole chunk.
// chunk_fn(Acc&, const TrialContext&, Rng&) — or the legacy
// (Acc&, const TrialChunk&, Rng&) shape — runs the chunk's trials against a
// fresh accumulator copied from `zero` and the chunk's private rng.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc run_trial_chunks(std::uint64_t n_trials, const Rng& base, const Acc& zero,
                     ChunkFn&& chunk_fn, MergeFn&& merge,
                     const TrialOptions& opts = {}) {
  const std::uint64_t chunk_size =
      opts.chunk_size > 0 ? opts.chunk_size : kDefaultTrialChunk;
  const std::uint64_t num_chunks = (n_trials + chunk_size - 1) / chunk_size;
  Acc total(zero);
  if (num_chunks == 0) return total;

  // Chunk accumulators live in the caller's bump arena (released LIFO on
  // return), so repeated runs stop allocating once the arena warmed up.
  ArenaArray<Acc> parts(WorkerScratch::for_thread(),
                        static_cast<std::size_t>(num_chunks), zero);
  auto process = [&](std::uint64_t c) {
    TrialContext ctx;
    ctx.chunk.index = c;
    ctx.chunk.begin = c * chunk_size;
    ctx.chunk.end = std::min(n_trials, ctx.chunk.begin + chunk_size);
    ctx.arena = &WorkerScratch::for_thread();
    ctx.batch = opts.batch;
    Rng rng = base.split(c);
    if (obs::telemetry_enabled()) {
      const runtime_detail::ChunkMetrics& metrics =
          runtime_detail::ChunkMetrics::get();
      obs::Span span("runtime", "chunk");
      span.arg("chunk", c);
      span.arg("trials", ctx.chunk.end - ctx.chunk.begin);
      const std::uint64_t start_ns = obs::trace_now_ns();
      runtime_detail::invoke_chunk(chunk_fn, parts[static_cast<std::size_t>(c)],
                                   ctx, rng);
      metrics.wall_ns.record(obs::trace_now_ns() - start_ns);
      metrics.chunks.add();
    } else {
      runtime_detail::invoke_chunk(chunk_fn, parts[static_cast<std::size_t>(c)],
                                   ctx, rng);
    }
  };

  int threads = opts.threads > 0 ? opts.threads : default_threads();
  if (threads > 1 && num_chunks > 1 && !ThreadPool::inside_worker()) {
    ThreadPool::global(threads - 1).for_each_chunk(num_chunks, threads,
                                                   process);
  } else {
    // Sequential / nested fallback: same chunking, same merge order below,
    // hence the same bits.
    for (std::uint64_t c = 0; c < num_chunks; ++c) process(c);
  }

  for (Acc& part : parts) merge(total, std::move(part));
  return total;
}

// Trial-level entry point: per_trial(Acc&, std::uint64_t trial_index, Rng&)
// is called once per trial with the chunk's rng (shared sequentially by the
// trials of one chunk).
template <typename Acc, typename TrialFn, typename MergeFn>
Acc run_trials(std::uint64_t n_trials, const Rng& base, const Acc& zero,
               TrialFn&& per_trial, MergeFn&& merge,
               const TrialOptions& opts = {}) {
  return run_trial_chunks(
      n_trials, base, zero,
      [&](Acc& acc, const TrialContext& ctx, Rng& rng) {
        for (std::uint64_t t = ctx.chunk.begin; t < ctx.chunk.end; ++t)
          per_trial(acc, t, rng);
      },
      std::forward<MergeFn>(merge), opts);
}

}  // namespace sqs
