#include "runtime/run_trials.h"

namespace sqs {

const char* batch_policy_name(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kScalar: return "scalar";
    case BatchPolicy::kBatched: return "batched";
    case BatchPolicy::kDifferential: return "differential";
  }
  return "scalar";
}

bool parse_batch_policy(const std::string& text, BatchPolicy& out) {
  if (text == "scalar") {
    out = BatchPolicy::kScalar;
  } else if (text == "batched") {
    out = BatchPolicy::kBatched;
  } else if (text == "differential") {
    out = BatchPolicy::kDifferential;
  } else {
    return false;
  }
  return true;
}

}  // namespace sqs
