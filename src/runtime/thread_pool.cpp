#include "runtime/thread_pool.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/telemetry.h"
#include "obs/trace.h"

namespace sqs {

namespace {

// Scheduling telemetry: how long a thread waits between finishing one chunk
// and claiming the next (steal latency), and how deep the unclaimed pile is
// at each claim (queue occupancy). Chunk wall time itself is recorded by
// run_trials, which knows the trial ranges.
struct PoolMetrics {
  obs::Counter batches = obs::Registry::instance().counter("runtime.batches");
  obs::Histogram steal_ns = obs::Registry::instance().histogram(
      "runtime.steal_ns", obs::pow2_bounds(6, 30));
  obs::Histogram queue_depth = obs::Registry::instance().histogram(
      "runtime.queue_depth", obs::pow2_bounds(0, 16));

  static const PoolMetrics& get() {
    static const PoolMetrics metrics;
    return metrics;
  }
};

std::atomic<int> g_default_threads{0};

thread_local bool tl_inside_worker = false;

int env_threads() { return parse_thread_count(std::getenv("SQS_THREADS")); }

}  // namespace

int parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  // strtol would skip leading whitespace; a full-string integer must not.
  if (std::isspace(static_cast<unsigned char>(*text))) return 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0 || v > 4096) return 0;
  return static_cast<int>(v);
}

int default_threads() {
  const int pinned = g_default_threads.load(std::memory_order_relaxed);
  if (pinned > 0) return pinned;
  const int env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void set_default_threads(int n) {
  g_default_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int init_threads_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    } else {
      continue;
    }
    const int v = parse_thread_count(value);
    if (v > 0) {
      set_default_threads(v);
      return v;
    }
    std::fprintf(stderr,
                 "[sqs] ignoring invalid --threads value '%s' "
                 "(expected an integer in 1..4096)\n",
                 value);
  }
  return 0;
}

ThreadPool& ThreadPool::global(int min_workers) {
  // Leaked deliberately: workers must outlive any static whose destructor
  // might still submit work during program teardown.
  static ThreadPool* pool = new ThreadPool(0);
  pool->ensure_workers(min_workers);
  return *pool;
}

ThreadPool::ThreadPool(int workers) { ensure_workers(workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_workers(int workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < workers)
    threads_.emplace_back([this] { worker_loop(); });
}

int ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

bool ThreadPool::inside_worker() { return tl_inside_worker; }

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen_generation && slots_ > 0);
    });
    if (stop_) return;
    seen_generation = generation_;
    --slots_;
    ++running_;
    lock.unlock();
    tl_inside_worker = true;
    run_chunks();
    tl_inside_worker = false;
    lock.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  // Captured once so the steal/queue metrics of a batch are all-or-nothing;
  // chunk callbacks re-check the flag per chunk, which is why the final
  // flush below must NOT be gated on this capture.
  const bool telemetry = obs::telemetry_enabled();
  std::uint64_t last_done_ns = telemetry ? obs::trace_now_ns() : 0;
  for (;;) {
    if (abort_.load(std::memory_order_relaxed)) break;
    const std::uint64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks_) break;
    if (telemetry) {
      const PoolMetrics& metrics = PoolMetrics::get();
      const std::uint64_t now = obs::trace_now_ns();
      metrics.steal_ns.record(now - last_done_ns);
      metrics.queue_depth.record(num_chunks_ - c - 1);
    }
    try {
      (*fn_)(c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (c < error_chunk_) {
        error_chunk_ = c;
        error_ = std::current_exception();
      }
      abort_.store(true, std::memory_order_relaxed);
    }
    if (telemetry) last_done_ns = obs::trace_now_ns();
  }
  // Scope-exit merge of this thread's telemetry shard: by the time the
  // caller observes the batch as finished, every worker's metrics and trace
  // events are in the global registry (the determinism contract of
  // obs::Registry — integer merges, order-independent). Unconditional: a
  // configure() that enabled telemetry mid-batch dirtied shards even though
  // the captured flag above is false, and flush_thread() is a no-op on a
  // clean shard anyway.
  obs::Registry::flush_thread();
}

void ThreadPool::for_each_chunk(std::uint64_t num_chunks, int max_threads,
                                const std::function<void(std::uint64_t)>& fn) {
  if (num_chunks == 0) return;
  PoolMetrics::get().batches.add();
  obs::Span batch_span("runtime", "batch");
  batch_span.arg("chunks", num_chunks);
  batch_span.arg("max_threads", static_cast<std::uint64_t>(max_threads));
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    num_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    error_chunk_ = ~0ull;
    int worker_cap = std::max(max_threads - 1, 0);
    if (static_cast<std::uint64_t>(worker_cap) > num_chunks)
      worker_cap = static_cast<int>(num_chunks);
    slots_ = std::min(worker_cap, static_cast<int>(threads_.size()));
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a full participant; it also shields nested run_trials
  // calls from re-entering the pool (they run inline).
  const bool was_inside = tl_inside_worker;
  tl_inside_worker = true;
  run_chunks();
  tl_inside_worker = was_inside;

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Close the batch: workers that have not joined yet never will, so
    // waiting for running_ == 0 cannot miss a late joiner.
    slots_ = 0;
    done_cv_.wait(lock, [&] { return running_ == 0; });
    error = error_;
    fn_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace sqs
