// Shared execution engine for every Monte Carlo path in the repository.
//
// The repo's estimates (availability Monte Carlo, two-client
// non-intersection sampling, probe-complexity measurements, register
// replication sweeps) are embarrassingly parallel across trials, but were
// historically private single-threaded loops. This module provides the one
// pool they all share. Scheduling is work-stealing-lite: chunks of trials
// sit in a single shared pile and every participating thread (the caller
// included) steals the next unclaimed chunk via an atomic ticket, which
// load-balances like per-worker deques without their bookkeeping. The pool
// never affects results: chunk seeding and reduction order are fixed by
// run_trials (see run_trials.h), so outputs are bit-identical for any
// thread count.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqs {

// Effective thread count used when a caller does not pin one explicitly:
// set_default_threads(n) if set, else the SQS_THREADS environment variable,
// else std::thread::hardware_concurrency() (minimum 1).
int default_threads();

// Overrides the process-wide default; n <= 0 restores automatic selection.
void set_default_threads(int n);

// Parses a thread-count token: a full-string integer in [1, 4096]. Returns
// 0 for anything else (empty, trailing junk, out of range). One validated
// parser shared by the SQS_THREADS environment variable and the --threads
// command-line flag.
int parse_thread_count(const char* text);

// Scans argv for "--threads N" or "--threads=N" and applies
// set_default_threads; returns the parsed value (0 if absent). Rejected
// values are reported on stderr and ignored. Shared by the bench drivers
// and the CLI.
int init_threads_from_args(int argc, char** argv);

class ThreadPool {
 public:
  // The lazily created process-wide pool, grown to at least `min_workers`
  // resident worker threads (the caller of for_each_chunk participates too,
  // so max_threads-1 workers suffice for max_threads-way parallelism).
  static ThreadPool& global(int min_workers);

  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Spawns additional resident workers until at least `workers` exist.
  void ensure_workers(int workers);

  int workers() const;

  // True on a thread currently executing a chunk; used by run_trials to run
  // nested invocations inline instead of deadlocking on the pool.
  static bool inside_worker();

  // Runs fn(c) for every c in [0, num_chunks) across at most `max_threads`
  // threads (including the calling thread, which participates). Blocks until
  // every claimed chunk finished. If any fn throws, remaining unclaimed
  // chunks are abandoned and the exception from the lowest-indexed throwing
  // chunk is rethrown here.
  void for_each_chunk(std::uint64_t num_chunks, int max_threads,
                      const std::function<void(std::uint64_t)>& fn);

 private:
  void worker_loop();
  // Claim-and-execute loop shared by workers and the calling thread.
  void run_chunks();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // Serializes concurrent for_each_chunk callers (one batch at a time).
  std::mutex batch_mu_;

  // State of the current batch; written under mu_ before workers wake.
  std::uint64_t generation_ = 0;
  const std::function<void(std::uint64_t)>* fn_ = nullptr;
  std::uint64_t num_chunks_ = 0;
  std::atomic<std::uint64_t> next_chunk_{0};
  std::atomic<bool> abort_{false};
  int slots_ = 0;    // workers still allowed to join this batch
  int running_ = 0;  // workers currently executing chunks
  std::exception_ptr error_;
  std::uint64_t error_chunk_ = ~0ull;
};

}  // namespace sqs
