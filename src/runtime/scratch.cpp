#include "runtime/scratch.h"

#include <algorithm>
#include <mutex>

#include "obs/telemetry.h"

namespace sqs {

namespace {

// Arena telemetry: in steady state cache_misses and block_allocs stop
// moving — the signal that the hot paths no longer touch the heap.
struct ArenaMetrics {
  obs::Counter cache_hits =
      obs::Registry::instance().counter("runtime.arena.cache_hits");
  obs::Counter cache_misses =
      obs::Registry::instance().counter("runtime.arena.cache_misses");
  obs::Counter bytes_reused =
      obs::Registry::instance().counter("runtime.arena.bytes_reused");
  obs::Counter block_allocs =
      obs::Registry::instance().counter("runtime.arena.block_allocs");

  static const ArenaMetrics& get() {
    static const ArenaMetrics metrics;
    return metrics;
  }
};

// Overflow list for count buffers handed back on a different thread than
// the one that will take them next (the merging caller returns buffers the
// workers took). Leaked like the global thread pool: resident workers may
// still hold references during static teardown.
struct CountsOverflow {
  std::mutex mu;
  std::vector<std::vector<long>> buffers;

  static CountsOverflow& get() {
    static CountsOverflow* overflow = new CountsOverflow;
    return *overflow;
  }
};

constexpr std::size_t kMaxOverflowCounts = 1024;

}  // namespace

WorkerScratch& WorkerScratch::for_thread() {
  thread_local WorkerScratch scratch;
  return scratch;
}

void WorkerScratch::record_cache_hit(std::size_t bytes) {
  const ArenaMetrics& metrics = ArenaMetrics::get();
  metrics.cache_hits.add();
  metrics.bytes_reused.add(static_cast<std::uint64_t>(bytes));
}

void WorkerScratch::record_cache_miss() { ArenaMetrics::get().cache_misses.add(); }

void WorkerScratch::record_block_alloc() {
  ArenaMetrics::get().block_allocs.add();
}

std::vector<long> WorkerScratch::take_counts(std::size_t size) {
  std::vector<long> buf;
  if (!counts_.empty()) {
    buf = std::move(counts_.back());
    counts_.pop_back();
  } else {
    CountsOverflow& overflow = CountsOverflow::get();
    std::lock_guard<std::mutex> lock(overflow.mu);
    if (!overflow.buffers.empty()) {
      buf = std::move(overflow.buffers.back());
      overflow.buffers.pop_back();
    }
  }
  if (buf.capacity() >= size) {
    record_cache_hit(buf.capacity() * sizeof(long));
  } else {
    record_cache_miss();
  }
  buf.assign(size, 0);
  return buf;
}

void WorkerScratch::give_counts(std::vector<long>&& buf) {
  if (buf.capacity() == 0) return;  // moved-from husks would pollute the pool
  if (counts_.size() < kMaxLocalCounts) {
    counts_.push_back(std::move(buf));
    return;
  }
  CountsOverflow& overflow = CountsOverflow::get();
  std::lock_guard<std::mutex> lock(overflow.mu);
  if (overflow.buffers.size() < kMaxOverflowCounts)
    overflow.buffers.push_back(std::move(buf));
}

void* WorkerScratch::arena_allocate(std::size_t bytes, std::size_t align) {
  assert(align > 0 && align <= alignof(std::max_align_t));
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_block_ < blocks_.size()) {
      Block& block = blocks_[current_block_];
      const std::size_t top = (block.top + align - 1) & ~(align - 1);
      if (top + bytes <= block.size) {
        block.top = top + bytes;
        record_cache_hit(bytes);
        return block.data.get() + top;
      }
      ++current_block_;
      if (current_block_ < blocks_.size()) blocks_[current_block_].top = 0;
      continue;
    }
    const std::size_t want = std::max(
        bytes, blocks_.empty() ? kMinArenaBlock : blocks_.back().size * 2);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want, 0});
    current_block_ = blocks_.size() - 1;
    record_block_alloc();
  }
}

WorkerScratch::ArenaMark WorkerScratch::arena_mark() const {
  ArenaMark mark;
  mark.block = current_block_;
  mark.top = current_block_ < blocks_.size() ? blocks_[current_block_].top : 0;
  return mark;
}

void WorkerScratch::arena_release(const ArenaMark& mark) {
  current_block_ = mark.block;
  if (current_block_ < blocks_.size()) blocks_[current_block_].top = mark.top;
}

}  // namespace sqs
