#!/usr/bin/env python3
"""Compare fresh BENCH_*.json records against a committed baseline.

Each bench driver that tracks the perf trajectory writes a BENCH_<name>.json
with a "runs" array of {threads, wall_ms, ...} entries and a "workload"
object holding the parameters (including "trials"). This script pairs fresh
records with the baseline copies committed under bench/baselines/ and fails
(exit 1) when any matched run regressed by more than --threshold (default
25%) in wall_ms — but only when the workloads are actually comparable, i.e.
the trial counts (and the rest of the workload parameters) are equal.

Usage:
  scripts/bench_diff.py --baseline bench/baselines --fresh build/bench
  scripts/bench_diff.py --fresh build/bench --update   # refresh baselines

Non-comparable or missing records are reported and skipped, never fatal:
a new bench has no baseline yet, and a workload bump legitimately resets
the trajectory (commit the fresh record via --update in the same PR).
"""

import argparse
import glob
import json
import os
import shutil
import sys


def load_records(directory):
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"[bench_diff] WARNING: cannot read {path}: {err}")
            continue
        records[os.path.basename(path)] = data
    return records


def comparable(baseline, fresh):
    """Runs are comparable only when the measured workload is identical."""
    return baseline.get("workload") == fresh.get("workload")


def diff_record(name, baseline, fresh, threshold):
    """Returns a list of regression strings (empty when the record is ok)."""
    if not comparable(baseline, fresh):
        print(f"[bench_diff] {name}: workload changed, skipping "
              f"(baseline {baseline.get('workload')} vs "
              f"fresh {fresh.get('workload')}); refresh with --update")
        return []
    baseline_runs = {r["threads"]: r for r in baseline.get("runs", [])}
    regressions = []
    for run in fresh.get("runs", []):
        threads = run.get("threads")
        base = baseline_runs.get(threads)
        if base is None:
            print(f"[bench_diff] {name}: no baseline run at "
                  f"threads={threads}, skipping")
            continue
        base_ms, fresh_ms = base["wall_ms"], run["wall_ms"]
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(
                f"{name} threads={threads}: {base_ms:.1f} ms -> "
                f"{fresh_ms:.1f} ms ({(ratio - 1.0) * 100:+.1f}%)")
        print(f"[bench_diff] {name} threads={threads}: "
              f"{base_ms:.1f} ms -> {fresh_ms:.1f} ms "
              f"({(ratio - 1.0) * 100:+.1f}%) {status}")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when wall_ms grows by more than this "
                             "fraction (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh records over the baselines instead "
                             "of comparing")
    args = parser.parse_args()

    fresh = load_records(args.fresh)
    if not fresh:
        print(f"[bench_diff] no BENCH_*.json found in {args.fresh}")
        return 1

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for name in sorted(fresh):
            dest = os.path.join(args.baseline, name)
            shutil.copyfile(os.path.join(args.fresh, name), dest)
            print(f"[bench_diff] baseline updated: {dest}")
        return 0

    baseline = load_records(args.baseline)
    regressions = []
    for name in sorted(fresh):
        if name not in baseline:
            print(f"[bench_diff] {name}: no committed baseline, skipping "
                  f"(add one with --update)")
            continue
        regressions += diff_record(name, baseline[name], fresh[name],
                                   args.threshold)

    if regressions:
        print(f"\n[bench_diff] FAILED: {len(regressions)} regression(s) "
              f"beyond {args.threshold * 100:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("\n[bench_diff] all matched runs within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
