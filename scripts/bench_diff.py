#!/usr/bin/env python3
"""Compare fresh BENCH_*.json records against a committed baseline.

Each bench driver that tracks the perf trajectory writes a BENCH_<name>.json
with a "runs" array of {threads, wall_ms, ...} entries and a "workload"
object holding the parameters (including "trials"). This script pairs fresh
records with the baseline copies committed under bench/baselines/ and fails
(exit 1) when any matched run regressed by more than --threshold (default
25%) in wall_ms — but only when the workloads are actually comparable, i.e.
the trial counts (and the rest of the workload parameters) are equal.

Runs from latency-oriented benches (BENCH_service.json) additionally carry
p50_us/p99_us/p999_us quantiles; when both sides have p99_us, it is gated
with the same threshold as wall_ms, so a served-latency regression fails
the diff even if the wall clock got faster (the service computes latency in
virtual time — wall_ms measures the harness, p99_us measures the system
under test). p50/p999 are printed as context, never gated: the median moves
with benign scheduling detail and the p999 tail of a bucketed histogram is
too coarse to threshold. Runs without quantile fields diff exactly as
before.

Records may also carry a "metrics" telemetry snapshot ({"counters": {...},
"histograms": [...]}); when both sides have one, counter context (e.g. how
many runtime chunks the workload executed) is printed next to the timing
diff. Records written before the telemetry subsystem existed lack the key —
they must still load and compare on wall_ms alone, never crash.

Usage:
  scripts/bench_diff.py --baseline bench/baselines --fresh build/bench
  scripts/bench_diff.py --fresh build/bench --update   # refresh baselines
  scripts/bench_diff.py --self-test                    # run the unit tests

Non-comparable or missing records are reported and skipped, never fatal:
a new bench has no baseline yet, and a workload bump legitimately resets
the trajectory (commit the fresh record via --update in the same PR).
"""

import argparse
import glob
import json
import os
import shutil
import sys
import tempfile

# Counters worth surfacing next to the wall-clock diff, when present.
CONTEXT_COUNTERS = (
    "runtime.chunks_executed",
    "sweep.chunks_executed",
    "sweep.cells",
    "pool.tasks_stolen",
    "runtime.arena.cache_hits",
    "runtime.arena.cache_misses",
    "runtime.arena.bytes_reused",
    "runtime.arena.block_allocs",
    "sim.faults.injected",
    "sim.net.delivered",
    "sim.net.dropped",
    "sim.client.retries",
    "sim.server.dropped_requests",
    "service.requests",
    "service.decode_failures",
    "service.stale_reads",
    "service.replica.dropped_requests",
    "obs.recorder.events_recorded",
    "obs.recorder.events_overwritten",
)


def load_records(directory):
    records = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path, "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"[bench_diff] WARNING: cannot read {path}: {err}")
            continue
        records[os.path.basename(path)] = data
    return records


def comparable(baseline, fresh):
    """Runs are comparable only when the measured workload is identical."""
    return baseline.get("workload") == fresh.get("workload")


def run_key(run):
    """Pairs runs by (threads, mode).

    Benches that exercise the SoA batch kernels write scalar and batched
    timings of the same workload at the same thread count; "mode"
    disambiguates them. Records written before the batch layer existed have
    no "mode" field and default to "scalar", so old baselines keep pairing
    with new scalar runs.
    """
    return (run.get("threads"), run.get("mode", "scalar"))


def run_label(run):
    label = f"threads={run.get('threads')}"
    mode = run.get("mode", "scalar")
    return label if mode == "scalar" else f"{label} mode={mode}"


def counter_context(baseline, fresh):
    """Returns a short string of matched telemetry counters, or ''.

    Pre-telemetry records have no "metrics" key and newer ones may carry a
    snapshot without "counters"; every access below therefore uses .get()
    so mixed-era comparisons never raise.
    """
    base_counters = (baseline.get("metrics") or {}).get("counters") or {}
    fresh_counters = (fresh.get("metrics") or {}).get("counters") or {}
    parts = []
    for name in CONTEXT_COUNTERS:
        if name in base_counters and name in fresh_counters:
            parts.append(f"{name} {base_counters[name]} -> "
                         f"{fresh_counters[name]}")
    return "; ".join(parts)


def diff_quantiles(name, label, base, fresh, threshold):
    """Gates p99_us when both runs carry it; p50/p999 are context only.

    Latency quantiles are computed on the service's virtual timeline, so on
    an identical workload they only move when the served behavior changed —
    the gate catches that even when wall_ms improved. Runs written by
    wall-clock-only benches have no quantile fields and return [] untouched.
    """
    base_p99, fresh_p99 = base.get("p99_us"), fresh.get("p99_us")
    if base_p99 is None or fresh_p99 is None:
        return []
    ratio = fresh_p99 / base_p99 if base_p99 > 0 else float("inf")
    status = "ok"
    regressions = []
    if ratio > 1.0 + threshold:
        status = "REGRESSION"
        regressions.append(
            f"{name} {label}: p99 {base_p99:.0f} us -> "
            f"{fresh_p99:.0f} us ({(ratio - 1.0) * 100:+.1f}%)")
    context = "; ".join(
        f"{q} {base.get(q):.0f} -> {fresh.get(q):.0f} us"
        for q in ("p50_us", "p999_us")
        if base.get(q) is not None and fresh.get(q) is not None)
    print(f"[bench_diff] {name} {label}: "
          f"p99 {base_p99:.0f} us -> {fresh_p99:.0f} us "
          f"({(ratio - 1.0) * 100:+.1f}%) {status}"
          f"{' [' + context + ']' if context else ''}")
    return regressions


def diff_record(name, baseline, fresh, threshold):
    """Returns a list of regression strings (empty when the record is ok)."""
    if not comparable(baseline, fresh):
        print(f"[bench_diff] {name}: workload changed, skipping "
              f"(baseline {baseline.get('workload')} vs "
              f"fresh {fresh.get('workload')}); refresh with --update")
        return []
    baseline_runs = {run_key(r): r for r in baseline.get("runs", [])}
    regressions = []
    for run in fresh.get("runs", []):
        label = run_label(run)
        base = baseline_runs.get(run_key(run))
        if base is None:
            print(f"[bench_diff] {name}: no baseline run at "
                  f"{label}, skipping")
            continue
        base_ms, fresh_ms = base.get("wall_ms"), run.get("wall_ms")
        if base_ms is None or fresh_ms is None:
            print(f"[bench_diff] {name} {label}: record lacks "
                  f"wall_ms, skipping")
            continue
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            regressions.append(
                f"{name} {label}: {base_ms:.1f} ms -> "
                f"{fresh_ms:.1f} ms ({(ratio - 1.0) * 100:+.1f}%)")
        print(f"[bench_diff] {name} {label}: "
              f"{base_ms:.1f} ms -> {fresh_ms:.1f} ms "
              f"({(ratio - 1.0) * 100:+.1f}%) {status}")
        regressions += diff_quantiles(name, label, base, run, threshold)
    context = counter_context(baseline, fresh)
    if context:
        print(f"[bench_diff] {name}: telemetry: {context}")
    return regressions


def run(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baselines",
                        help="directory with committed BENCH_*.json baselines")
    parser.add_argument("--fresh",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fail when wall_ms grows by more than this "
                             "fraction (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh records over the baselines instead "
                             "of comparing")
    parser.add_argument("--self-test", action="store_true",
                        help="run this script's own unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.fresh:
        parser.error("--fresh is required (unless --self-test)")

    fresh = load_records(args.fresh)
    if not fresh:
        print(f"[bench_diff] no BENCH_*.json found in {args.fresh}")
        return 1

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for name in sorted(fresh):
            dest = os.path.join(args.baseline, name)
            shutil.copyfile(os.path.join(args.fresh, name), dest)
            print(f"[bench_diff] baseline updated: {dest}")
        return 0

    baseline = load_records(args.baseline)
    regressions = []
    for name in sorted(fresh):
        if name not in baseline:
            print(f"[bench_diff] {name}: no committed baseline, skipping "
                  f"(add one with --update)")
            continue
        regressions += diff_record(name, baseline[name], fresh[name],
                                   args.threshold)

    if regressions:
        print(f"\n[bench_diff] FAILED: {len(regressions)} regression(s) "
              f"beyond {args.threshold * 100:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("\n[bench_diff] all matched runs within threshold")
    return 0


# --- self tests -------------------------------------------------------------


def _record(wall_ms_by_threads, workload=None, metrics=None, drop_wall=False,
            quantiles=None):
    # Keys are either a thread count or a (threads, mode) tuple; the bare
    # form writes no "mode" field, matching pre-batch-era records.
    runs = []
    for key, ms in wall_ms_by_threads.items():
        threads, mode = key if isinstance(key, tuple) else (key, None)
        entry = {"threads": threads}
        if mode is not None:
            entry["mode"] = mode
        if not drop_wall:
            entry["wall_ms"] = ms
        if quantiles is not None:
            entry.update(quantiles)
        runs.append(entry)
    rec = {"workload": workload or {"name": "w", "trials": 100}, "runs": runs}
    if metrics is not None:
        rec["metrics"] = metrics
    return rec


def self_test():
    failures = []

    def check(label, condition):
        print(f"[self-test] {label}: {'ok' if condition else 'FAIL'}")
        if not condition:
            failures.append(label)

    # Within threshold: no regression reported.
    check("within threshold",
          diff_record("a", _record({1: 100.0}), _record({1: 110.0}), 0.25)
          == [])
    # Beyond threshold: exactly one regression.
    check("beyond threshold",
          len(diff_record("a", _record({1: 100.0}), _record({1: 140.0}),
                          0.25)) == 1)
    # Changed workload: skipped, never a regression.
    check("workload change skipped",
          diff_record("a", _record({1: 100.0}),
                      _record({1: 900.0}, workload={"name": "w2",
                                                    "trials": 999}),
                      0.25) == [])
    # Scalar and batched runs at the same thread count pair by mode: the
    # batched regression is caught without confusing it for the scalar run.
    regs = diff_record("a",
                       _record({(1, "scalar"): 100.0, (1, "batched"): 40.0}),
                       _record({(1, "scalar"): 100.0, (1, "batched"): 80.0}),
                       0.25)
    check("batched run paired by mode",
          len(regs) == 1 and "mode=batched" in regs[0])
    # A missing "mode" field means "scalar": old baselines keep pairing with
    # fresh records that spell it out.
    check("absent mode defaults to scalar",
          diff_record("a", _record({1: 100.0}),
                      _record({(1, "scalar"): 105.0}), 0.25) == [])
    # A batched run with no batched baseline is skipped, never a regression.
    check("unmatched batched run skipped",
          diff_record("a", _record({1: 100.0}),
                      _record({1: 100.0, (1, "batched"): 900.0}), 0.25) == [])
    # Pre-telemetry baseline (no "metrics" key) vs fresh record with one:
    # must not raise and must still diff wall_ms.
    pre = _record({1: 100.0})
    post = _record({1: 150.0},
                   metrics={"counters": {"runtime.chunks_executed": 8}})
    try:
        regs = diff_record("a", pre, post, 0.25)
        check("pre-telemetry baseline", len(regs) == 1)
    except (KeyError, TypeError, AttributeError) as err:
        check(f"pre-telemetry baseline (raised {err!r})", False)
    # Metrics snapshot without "counters": also fine.
    try:
        counter_context(_record({1: 1.0}, metrics={}), post)
        check("metrics without counters", True)
    except (KeyError, TypeError, AttributeError) as err:
        check(f"metrics without counters (raised {err!r})", False)
    # Both sides instrumented: the shared counters are surfaced.
    both = counter_context(
        _record({1: 1.0}, metrics={"counters": {"sweep.cells": 9}}),
        _record({1: 1.0}, metrics={"counters": {"sweep.cells": 9}}))
    check("counter context rendered", "sweep.cells 9 -> 9" in both)
    # Arena counters ride along in the same context block; misses holding at
    # zero is the steady-state signal the sweep benches export.
    arena = counter_context(
        _record({1: 1.0},
                metrics={"counters": {"runtime.arena.cache_misses": 0}}),
        _record({1: 1.0},
                metrics={"counters": {"runtime.arena.cache_misses": 0}}))
    check("arena counter context rendered",
          "runtime.arena.cache_misses 0 -> 0" in arena)
    # Fault-injection counters surface the same way (BENCH_faults.json).
    faults = counter_context(
        _record({1: 1.0}, metrics={"counters": {"sim.faults.injected": 42}}),
        _record({1: 1.0}, metrics={"counters": {"sim.faults.injected": 42}}))
    check("fault counter context rendered",
          "sim.faults.injected 42 -> 42" in faults)
    # Flight-recorder counters surface the same way; overwritten creeping up
    # from zero means the rings wrapped and the dump lost history.
    recorder = counter_context(
        _record({1: 1.0}, metrics={"counters": {
            "obs.recorder.events_recorded": 1000,
            "obs.recorder.events_overwritten": 0}}),
        _record({1: 1.0}, metrics={"counters": {
            "obs.recorder.events_recorded": 1000,
            "obs.recorder.events_overwritten": 16}}))
    check("recorder counter context rendered",
          "obs.recorder.events_recorded 1000 -> 1000" in recorder and
          "obs.recorder.events_overwritten 0 -> 16" in recorder)
    # Latency-quantile runs (BENCH_service.json shape): p99 within threshold
    # passes even alongside a matching wall_ms.
    q = {"p50_us": 1000.0, "p99_us": 5000.0, "p999_us": 9000.0}
    q_worse = {"p50_us": 1000.0, "p99_us": 9000.0, "p999_us": 9000.0}
    check("p99 within threshold",
          diff_record("s", _record({1: 100.0}, quantiles=q),
                      _record({1: 100.0}, quantiles=q), 0.25) == [])
    # p99 regression fails even though wall_ms improved.
    regs = diff_record("s", _record({1: 100.0}, quantiles=q),
                       _record({1: 50.0}, quantiles=q_worse), 0.25)
    check("p99 regression gated", len(regs) == 1 and "p99" in regs[0])
    # p50/p999 drift alone never gates — context only.
    q_p50 = {"p50_us": 9000.0, "p99_us": 5000.0, "p999_us": 99000.0}
    check("p50/p999 drift not gated",
          diff_record("s", _record({1: 100.0}, quantiles=q),
                      _record({1: 100.0}, quantiles=q_p50), 0.25) == [])
    # Baseline without quantile fields vs fresh with them (or vice versa):
    # wall_ms-only diff, no crash, no gate.
    try:
        regs = diff_record("s", _record({1: 100.0}),
                           _record({1: 100.0}, quantiles=q_worse), 0.25)
        check("mixed-era quantiles skipped", regs == [])
    except (KeyError, TypeError, AttributeError) as err:
        check(f"mixed-era quantiles skipped (raised {err!r})", False)
    # Record lacking wall_ms entirely: skipped, not fatal.
    try:
        regs = diff_record("a", _record({1: 100.0}, drop_wall=True),
                           _record({1: 500.0}), 0.25)
        check("missing wall_ms skipped", regs == [])
    except (KeyError, TypeError) as err:
        check(f"missing wall_ms skipped (raised {err!r})", False)
    # End-to-end through run(): --update then compare in a temp tree.
    with tempfile.TemporaryDirectory() as tmp:
        fresh_dir = os.path.join(tmp, "fresh")
        base_dir = os.path.join(tmp, "base")
        os.makedirs(fresh_dir)
        with open(os.path.join(fresh_dir, "BENCH_x.json"), "w",
                  encoding="utf-8") as f:
            json.dump(_record({1: 100.0, 8: 50.0}), f)
        check("run --update",
              run(["--fresh", fresh_dir, "--baseline", base_dir,
                   "--update"]) == 0)
        check("run compare ok",
              run(["--fresh", fresh_dir, "--baseline", base_dir]) == 0)
        with open(os.path.join(fresh_dir, "BENCH_x.json"), "w",
                  encoding="utf-8") as f:
            json.dump(_record({1: 200.0, 8: 50.0}), f)
        check("run compare regression",
              run(["--fresh", fresh_dir, "--baseline", base_dir]) == 1)
        # Unreadable record: warned about and skipped.
        with open(os.path.join(fresh_dir, "BENCH_x.json"), "w",
                  encoding="utf-8") as f:
            f.write("{not json")
        check("run corrupt record",
              run(["--fresh", fresh_dir, "--baseline", base_dir]) == 1)

    if failures:
        print(f"\n[self-test] FAILED: {failures}")
        return 1
    print("\n[self-test] all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
