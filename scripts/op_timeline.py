#!/usr/bin/env python3
"""Reconstruct one operation's causal timeline from observability dumps.

Two sources, both JSONL, both carrying the 64-bit op id (high 16 bits =
stream, low 48 = sequence; see src/obs/recorder.h):

  * a flight-recorder dump (--flight FILE) — the black box written by
    `sqs_cli chaos` on an invariant violation, `sqs_cli serve` on a lost
    acked write, or obs::write_flight_recorder() directly. First line is a
    {"flight_recorder": {...}} meta object; every following line is one
    event {"run", "t_us", "op"/"stream"/"seq" (op null for unattributed
    events), "kind", "replica", "payload"} in simulated microseconds.
  * a trace JSONL file (--trace FILE, produced by --trace-jsonl) — wall
    clock spans/instants {"name", "cat", "ph", "ts_ns", "dur_ns"?, "tid",
    "op"?, "args"?} in nanoseconds since process trace epoch.

The two clocks are different on purpose (virtual vs wall); the tool prints
them as separate sections of one op's journey rather than pretending they
interleave.

Usage:
  scripts/op_timeline.py --flight chaos_blackbox.jsonl --list 10
  scripts/op_timeline.py --flight dump.jsonl --trace trace.jsonl --op 1:42
  scripts/op_timeline.py --op 0x000100000000002a --flight dump.jsonl
  scripts/op_timeline.py --self-test

Exit status: 0 on success, 1 when the requested op has no events or an
input file is malformed/missing.
"""

import argparse
import json
import sys

OP_SEQ_BITS = 48
OP_SEQ_MASK = (1 << OP_SEQ_BITS) - 1
NO_OP = (1 << 64) - 1


def make_op_id(stream, seq):
    return (stream << OP_SEQ_BITS) | (seq & OP_SEQ_MASK)


def op_stream(op):
    return op >> OP_SEQ_BITS


def op_seq(op):
    return op & OP_SEQ_MASK


def parse_op(text):
    """Accepts STREAM:SEQ (decimal) or a raw op id (decimal or 0x hex)."""
    if ":" in text:
        stream, seq = text.split(":", 1)
        return make_op_id(int(stream, 0), int(seq, 0))
    return int(text, 0)


def stream_name(stream):
    # Stream assignment mirrors src/obs/recorder.h: 0 = service requests,
    # 1+c = sim client c, 0xFFFF = probe-layer Monte Carlo trials.
    if stream == 0:
        return "service"
    if stream == 0xFFFF:
        return "probe-trial"
    return "sim-client-%d" % (stream - 1)


def load_jsonl(path):
    """Yields (line_number, object) for every non-empty line; raises
    ValueError naming the offending line on malformed JSON."""
    out = []
    with open(path) as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append((i, json.loads(line)))
            except json.JSONDecodeError as e:
                raise ValueError("%s:%d: %s" % (path, i, e))
    return out


def load_flight(path):
    """Returns (meta_or_None, [event dict, ...])."""
    rows = load_jsonl(path)
    meta = None
    events = []
    for _, obj in rows:
        if "flight_recorder" in obj:
            meta = obj["flight_recorder"]
        elif "kind" in obj:
            events.append(obj)
    return meta, events


def load_trace(path):
    return [obj for _, obj in load_jsonl(path) if "ts_ns" in obj]


def event_op(obj):
    op = obj.get("op")
    return NO_OP if op is None else op


def fmt_us(us):
    return "%12d us" % us


def print_flight_section(events, op, out):
    mine = [e for e in events if event_op(e) == op]
    mine.sort(key=lambda e: (e.get("run", 0), e["t_us"]))
    if not mine:
        return 0
    out.write("flight recorder (simulated time):\n")
    prev = None
    for e in mine:
        t = e["t_us"]
        delta = "" if prev is None else "  (+%d us)" % (t - prev)
        prev = t
        replica = e.get("replica", -1)
        where = "" if replica < 0 else "  replica=%d" % replica
        out.write("  run %-3d %s  %-16s%s  payload=%d%s\n" %
                  (e.get("run", 0), fmt_us(t), e["kind"], where,
                   e.get("payload", 0), delta))
    return len(mine)


def print_trace_section(events, op, out):
    mine = [e for e in events if event_op(e) == op]
    mine.sort(key=lambda e: e["ts_ns"])
    if not mine:
        return 0
    out.write("trace (wall clock, ns since trace epoch):\n")
    prev = None
    for e in mine:
        t = e["ts_ns"]
        delta = "" if prev is None else "  (+%d ns)" % (t - prev)
        prev = t
        dur = "  dur=%d ns" % e["dur_ns"] if "dur_ns" in e else ""
        args = ""
        if e.get("args"):
            args = "  " + ",".join("%s=%s" % kv for kv in e["args"].items())
        out.write("  tid %-3d %12d ns  %s/%-24s%s%s%s\n" %
                  (e.get("tid", 0), t, e.get("cat", "?"), e.get("name", "?"),
                   dur, args, delta))
    return len(mine)


def list_ops(flight_events, trace_events, limit, out):
    counts = {}
    for e in flight_events:
        op = event_op(e)
        if op != NO_OP:
            counts[op] = counts.get(op, 0) + 1
    for e in trace_events:
        op = event_op(e)
        if op != NO_OP:
            counts[op] = counts.get(op, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
    out.write("%-20s %-14s %-10s %s\n" % ("op", "stream", "seq", "events"))
    for op, n in ranked:
        out.write("%-20s %-14s %-10d %d\n" %
                  ("%d:%d" % (op_stream(op), op_seq(op)),
                   stream_name(op_stream(op)), op_seq(op), n))
    return len(ranked)


def run(argv, out=sys.stdout, err=sys.stderr):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--flight", help="flight recorder dump (JSONL)")
    parser.add_argument("--trace", help="trace JSONL (--trace-jsonl output)")
    parser.add_argument("--op", help="STREAM:SEQ or raw 64-bit op id")
    parser.add_argument("--list", type=int, metavar="N", default=0,
                        help="print the N ops with the most events")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded unit checks")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.flight and not args.trace:
        err.write("op_timeline: need --flight and/or --trace\n")
        return 1

    try:
        flight_meta, flight_events = (None, [])
        if args.flight:
            flight_meta, flight_events = load_flight(args.flight)
        trace_events = load_trace(args.trace) if args.trace else []
    except (OSError, ValueError) as e:
        err.write("op_timeline: %s\n" % e)
        return 1

    if flight_meta is not None:
        out.write("flight recorder: reason=%r events=%d recorded=%d "
                  "overwritten=%d rings=%d\n" %
                  (flight_meta.get("reason", ""), flight_meta.get("events", 0),
                   flight_meta.get("recorded", 0),
                   flight_meta.get("overwritten", 0),
                   flight_meta.get("rings", 0)))

    if args.list:
        list_ops(flight_events, trace_events, args.list, out)
        return 0

    if not args.op:
        err.write("op_timeline: need --op STREAM:SEQ or --list N\n")
        return 1
    try:
        op = parse_op(args.op)
    except ValueError:
        err.write("op_timeline: cannot parse op %r\n" % args.op)
        return 1

    out.write("op %d:%d (%s, id %d / 0x%016x)\n" %
              (op_stream(op), op_seq(op), stream_name(op_stream(op)), op,
               op))
    n = print_flight_section(flight_events, op, out)
    n += print_trace_section(trace_events, op, out)
    if n == 0:
        err.write("op_timeline: no events for op %s\n" % args.op)
        return 1
    out.write("%d events\n" % n)
    return 0


# --- self test --------------------------------------------------------------

SAMPLE_FLIGHT = """\
{"flight_recorder":{"reason":"test: forced","events":5,"recorded":5,"overwritten":0,"rings":2}}
{"run":0,"t_us":1000,"op":281474976710656,"stream":1,"seq":0,"kind":"arrival","replica":-1,"payload":0}
{"run":0,"t_us":1200,"op":281474976710656,"stream":1,"seq":0,"kind":"probe","replica":3,"payload":200}
{"run":0,"t_us":1500,"op":281474976710656,"stream":1,"seq":0,"kind":"quorum_acquired","replica":-1,"payload":2}
{"run":0,"t_us":1600,"op":281474976710656,"stream":1,"seq":0,"kind":"op_done","replica":-1,"payload":600}
{"run":0,"t_us":2000,"op":null,"kind":"fault","replica":0,"payload":1}
"""

SAMPLE_TRACE = """\
{"name":"run_probe","cat":"probe","ph":"X","ts_ns":5000,"dur_ns":900,"tid":1,"op":281474976710656,"args":{"probes":2,"acquired":1}}
{"name":"probe_hit","cat":"probe","ph":"i","ts_ns":5400,"tid":1,"op":281474976710656,"args":{"server":3}}
{"name":"unrelated","cat":"probe","ph":"i","ts_ns":6000,"tid":2}
"""


def self_test():
    import io
    import os
    import tempfile

    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)

    check("make/split roundtrip",
          op_stream(make_op_id(7, 99)) == 7 and op_seq(make_op_id(7, 99)) == 99)
    check("parse colon", parse_op("1:0") == 281474976710656)
    check("parse hex", parse_op("0x1000000000000") == 281474976710656)
    check("stream names", stream_name(0) == "service" and
          stream_name(1) == "sim-client-0" and
          stream_name(0xFFFF) == "probe-trial")

    with tempfile.TemporaryDirectory() as d:
        fpath = os.path.join(d, "flight.jsonl")
        tpath = os.path.join(d, "trace.jsonl")
        with open(fpath, "w") as f:
            f.write(SAMPLE_FLIGHT)
        with open(tpath, "w") as f:
            f.write(SAMPLE_TRACE)

        meta, events = load_flight(fpath)
        check("flight meta", meta is not None and meta["reason"] == "test: forced")
        check("flight events", len(events) == 5)
        check("null op", event_op(events[-1]) == NO_OP)

        out = io.StringIO()
        rc = run(["--flight", fpath, "--trace", tpath, "--op", "1:0"], out=out)
        text = out.getvalue()
        check("timeline exit 0", rc == 0)
        check("timeline flight section", "quorum_acquired" in text)
        check("timeline trace section", "run_probe" in text)
        check("timeline event count", "6 events" in text)
        check("timeline excludes unrelated", "unrelated" not in text)
        check("timeline deltas", "(+200 us)" in text)

        out = io.StringIO()
        rc = run(["--flight", fpath, "--list", "5"], out=out)
        check("list exit 0", rc == 0)
        check("list shows op", "1:0" in out.getvalue() and
              "sim-client-0" in out.getvalue())

        out, errs = io.StringIO(), io.StringIO()
        rc = run(["--flight", fpath, "--op", "2:77"], out=out, err=errs)
        check("missing op exit 1", rc == 1)
        check("missing op message", "no events" in errs.getvalue())

        bad = os.path.join(d, "bad.jsonl")
        with open(bad, "w") as f:
            f.write("not json\n")
        errs = io.StringIO()
        rc = run(["--flight", bad, "--op", "1:0"], out=io.StringIO(), err=errs)
        check("malformed exit 1", rc == 1)
        check("malformed names line", "bad.jsonl:1" in errs.getvalue())

    if failures:
        for name in failures:
            print("FAIL: %s" % name)
        return 1
    print("op_timeline self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
