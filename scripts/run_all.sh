#!/usr/bin/env bash
# Build everything, run the full test suite, every reproduction bench, and
# every example. Outputs land in test_output.txt / bench_output.txt at the
# repo root (the same files EXPERIMENTS.md quotes).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
for e in build/examples/*; do "$e"; done
