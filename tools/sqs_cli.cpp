// sqs_cli — command-line explorer for the library.
//
//   sqs_cli avail   --family optd --n 50 --alpha 2 --p 0.3
//   sqs_cli probes  --family paths --l 4 --p 0.2 [--trials 20000]
//   sqs_cli nonintersect --n 24 --alpha 2 --p 0.1 --miss 0.2
//   sqs_cli verify  --n 3 --alpha 1 -1,3 1,-2,-3
//   sqs_cli trace   --servers 30 --obs 200000 --p 0.05 --miss 0.02
//   sqs_cli profile --family optd --n 16 --alpha 2
//   sqs_cli sweep   --kind avail --families optd,opta --ps 0.1,0.2,0.3
//   sqs_cli sweep   --kind nonintersect --n 24 --alphas 1,2,3 --misses 0.1,0.2
//   sqs_cli search  --target-nonint 1e-3 --target-avail 0.999 --n 24 --p 0.1
//   sqs_cli chaos   --scenario churn --n 12 --alpha 2 --replicates 4
//   sqs_cli serve   --family optd --n 12 --alpha 2 --rate 2000 --duration 5
//
// `serve` runs the staged replicated-register service (src/service): an
// open-loop load generator issues read/write ops at the target rate through
// the family's probe strategy over the extracted Transport, executed by the
// three-stage runner (parallel decode -> ordered solo -> parallel encode).
// `--rate` / `--duration` are validated (malformed values are rejected on
// stderr, never silently defaulted); `--scenario` overlays a fault timeline
// (none|partition|churn|gray|lossy|byzantine). Exit code 1 if an acked write
// was lost or a read returned a never-written value (fabricated read).
//
// `chaos` sweeps fault-injection scenarios (src/faults) through the
// register-experiment harness and checks the paper's invariants per
// scenario: availability above the exact-DP floor, stale reads within the
// epsilon^2alpha envelope, timestamp monotonicity, no lost acked write, and
// — for churn scenarios — the reconfiguration invariants (no lost acked
// write across epochs, no read from a retired server, view-refresh
// convergence, cross-epoch quorum intersection). Exit code 1 if any
// invariant is violated. `--scenario all` runs the whole grid; `--list`
// names the shipped scenarios and `--list-scenarios` tabulates their
// invariant budgets. Scenarios are data: `--dump-scenarios DIR` writes the
// grid as strict JSON (scenarios/ holds the checked-in set, schema in
// scenarios/README.md) and `--scenario-file F` replays one without
// recompiling; `serve --scenario-file F` replays the same file through the
// staged service, churn included.
//
// `sweep` flattens the whole grid (every cell × every trial-chunk) into one
// submission on the shared thread pool; results are bit-identical to running
// the cells one by one. `--batch scalar|batched|differential` picks the
// chunk-kernel policy (DESIGN.md §3.12): batched runs the SoA bit-sliced
// kernels (same bits, faster), differential replays the scalar oracle per
// trial and aborts on the first disagreement. `search` finds the minimal alpha meeting the targets
// (exact DP by default, `--mc` for a sweep-backed Monte Carlo ladder) and
// then races the UQ + OPT_a compositions at that alpha by successive halving.
//
// Families: opta, optd, majority, grid (sqrt-n x sqrt-n), paths (--l),
// tree (--depth), pqs (--l as multiplier), plane (--q, prime), witness (--w),
// comp:<inner> (composition of the
// inner family over k servers with OPT_a over --n; e.g. comp:majority
// --k 9 --n 50 --alpha 2), and the masking variants masking-majority /
// masking-opta / masking-comp (--b liars tolerated, default 1; any two
// quorums intersect in >= 2b+1 servers so reads can outvote the liars).
//
// Every Monte Carlo subcommand runs on the shared parallel trial runtime.
// `--threads N` (or the SQS_THREADS environment variable) picks the thread
// count; results are bit-identical whatever value is used.
//
// Telemetry: `--metrics FILE` writes a counter/histogram snapshot as JSON,
// `--trace FILE` writes a Chrome trace_event file (open in chrome://tracing
// or https://ui.perfetto.dev), `--trace-jsonl FILE` the same events as
// JSONL. Enabling telemetry never changes any reported number.
//
// Observability (this PR's layer; DESIGN.md section 3.11): `serve` accepts
// `--timeline FILE` (+ `--timeline-window-ms N`) for a windowed time-series
// of the served stream, keyed to virtual time and bit-identical at any
// thread count. `serve` and `chaos` keep an always-on flight recorder
// (per-thread rings, capacity `--flight-recorder-events N`); when a chaos
// invariant fails or serve loses an acked write, the merged causal dump is
// written to `--blackbox FILE` (defaults chaos_blackbox.jsonl /
// serve_blackbox.jsonl). Reconstruct one op with scripts/op_timeline.py.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/composition.h"
#include "core/constructions.h"
#include "core/masking.h"
#include "analysis/profile.h"
#include "faults/chaos.h"
#include "faults/scenario_io.h"
#include "core/explicit_sqs.h"
#include "core/witness.h"
#include "mismatch/exact.h"
#include "mismatch/trace_gen.h"
#include "obs/recorder.h"
#include "obs/telemetry.h"
#include "obs/timeline.h"
#include "probe/measurements.h"
#include "probe/serverprobe.h"
#include "runtime/thread_pool.h"
#include "service/load_gen.h"
#include "service/runner.h"
#include "sweep/search.h"
#include "sweep/sweep.h"
#include "uqs/grid.h"
#include "uqs/majority.h"
#include "uqs/paths.h"
#include "uqs/pqs.h"
#include "uqs/projective_plane.h"
#include "uqs/tree.h"
#include "util/table.h"

namespace sqs {
namespace {

struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  int geti(const std::string& key, int fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoi(it->second);
  }
  double getd(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::string gets(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv, int start) {
  Args args;
  bool positional_only = false;
  for (int i = start; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--") {
      positional_only = true;  // everything after is positional (e.g. -1,3)
      continue;
    }
    if (positional_only) {
      args.positional.push_back(std::move(token));
      continue;
    }
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "1";
      }
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

std::shared_ptr<QuorumFamily> make_family(const std::string& spec, const Args& args) {
  const int n = args.geti("n", 50);
  const int alpha = args.geti("alpha", 2);
  if (spec.rfind("comp:", 0) == 0) {
    Args inner_args = args;
    inner_args.flags["n"] = std::to_string(args.geti("k", 9));
    auto inner = make_family(spec.substr(5), inner_args);
    return std::make_shared<CompositionFamily>(inner, n, alpha);
  }
  if (spec == "opta") return std::make_shared<OptAFamily>(n, alpha);
  if (spec == "optd") return std::make_shared<OptDFamily>(n, alpha);
  if (spec == "majority") return std::make_shared<MajorityFamily>(n);
  if (spec == "grid") {
    const int side = args.geti("side", static_cast<int>(std::round(std::sqrt(n))));
    return std::make_shared<GridFamily>(side, side);
  }
  if (spec == "paths") return std::make_shared<PathsFamily>(args.geti("l", 4));
  if (spec == "tree") return std::make_shared<TreeFamily>(args.geti("depth", 5));
  if (spec == "pqs") return std::make_shared<PqsFamily>(n, args.getd("l", 1.0));
  if (spec == "plane") return std::make_shared<ProjectivePlaneFamily>(args.geti("q", 5));
  if (spec == "witness")
    return std::make_shared<WitnessFamily>(n, args.geti("w", 8), alpha);
  // Masking variants (--b liars tolerated, default 1): any two quorums
  // intersect in >= 2b+1 servers, so b+1 correct replies outvote the liars.
  if (spec == "masking-majority")
    return std::make_shared<MaskingThresholdFamily>(n, args.geti("b", 1));
  if (spec == "masking-opta")
    return std::make_shared<MaskingOptAFamily>(n, alpha, args.geti("b", 1));
  if (spec == "masking-comp")
    return std::make_shared<MaskingCompositionFamily>(args.geti("k", 9), n,
                                                      alpha, args.geti("b", 1));
  std::fprintf(stderr, "unknown family '%s'\n", spec.c_str());
  std::exit(2);
}

// The data form of the --family flags (src/faults/family_spec.h): the same
// parameters make_family reads, captured by value so chaos scenarios can
// name their family, re-instantiate it at churned sizes, and serialize it.
FamilySpec spec_from_args(const std::string& kind, const Args& args) {
  FamilySpec spec;
  spec.kind = kind;
  spec.n = args.geti("n", 50);
  spec.alpha = args.geti("alpha", 2);
  spec.b = args.geti("b", 1);
  spec.k = args.geti("k", 9);
  spec.l = args.geti("l", 4);
  spec.pqs_l = args.getd("l", 1.0);
  spec.depth = args.geti("depth", 5);
  spec.q = args.geti("q", 5);
  spec.w = args.geti("w", 8);
  spec.side = args.geti("side", 0);
  return spec;
}

int cmd_avail(const Args& args) {
  auto family = make_family(args.gets("family", "optd"), args);
  Table table({"p", "availability", "1-availability"});
  std::vector<double> ps;
  if (args.flags.count("p")) {
    ps.push_back(args.getd("p", 0.3));
  } else {
    ps = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  }
  for (double p : ps) {
    const double a = family->availability(p);
    table.add_row({Table::fmt(p, 2), Table::fmt(a, 6),
                   Table::fmt_sci(std::max(0.0, 1.0 - a))});
  }
  table.print("availability of " + family->name());
  return 0;
}

int cmd_probes(const Args& args) {
  auto family = make_family(args.gets("family", "optd"), args);
  const double p = args.getd("p", 0.3);
  const int trials = args.geti("trials", 20000);
  const ProbeMeasurement m = measure_probes(*family, p, trials, Rng(args.geti("seed", 1)));
  Table table({"metric", "value"});
  table.add_row({"E[probes] measured", Table::fmt(m.probes_overall.mean(), 3)});
  table.add_row({"E[probes | acquired]", Table::fmt(m.probes_acquired.mean(), 3)});
  table.add_row({"max probes seen", std::to_string(m.max_probes_seen)});
  table.add_row({"acquire rate", Table::fmt(m.acquired.estimate(), 5)});
  table.add_row({"load (max server probe freq)", Table::fmt(m.load(), 4)});
  if (family->alpha() > 0 && family->universe_size() >= 3 * family->alpha() - 1) {
    table.add_row({"g(n) lower bound (optimal-avail SQS)",
                   Table::fmt(serverprobe_complexity(family->universe_size(),
                                                     family->alpha(), p),
                              3)});
    table.add_row({"2a/(1-p) bound",
                   Table::fmt(serverprobe_upper_bound(family->alpha(), p), 3)});
  }
  table.print("probe behaviour of " + family->name() + " at p=" + Table::fmt(p, 2));
  return 0;
}

int cmd_nonintersect(const Args& args) {
  const int n = args.geti("n", 24);
  const int alpha = args.geti("alpha", 2);
  const double p = args.getd("p", 0.1);
  const double miss = args.getd("miss", 0.2);
  const auto exact =
      exact_nonintersection(n, alpha, p, miss, opt_d_stop_rule(n, alpha));
  Table table({"quantity", "value"});
  table.add_row({"epsilon = 2m/(1+m)", Table::fmt(exact.epsilon, 5)});
  table.add_row({"P[non-intersection] (exact, OPT_d)",
                 Table::fmt_sci(exact.nonintersection)});
  table.add_row({"Theorem 9 bound eps^2a", Table::fmt_sci(exact.bound)});
  table.add_row({"P[both clients acquire]", Table::fmt(exact.both_acquire, 6)});
  table.print("two-client non-intersection, n=" + std::to_string(n) +
              ", alpha=" + std::to_string(alpha));
  return 0;
}

int cmd_verify(const Args& args) {
  const int n = args.geti("n", 0);
  const int alpha = args.geti("alpha", 1);
  if (n <= 0 || args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: sqs_cli verify --n N --alpha A <set> <set> ...\n"
                 "       each set is comma-separated signed 1-based ids, "
                 "e.g. -1,3\n");
    return 2;
  }
  ExplicitSqs system(n, alpha);
  for (const std::string& spec : args.positional) {
    std::vector<int> literals;
    std::stringstream stream(spec);
    std::string item;
    while (std::getline(stream, item, ',')) literals.push_back(std::stoi(item));
    system.add_quorum(SignedSet::from_literals(n, literals));
  }
  const auto violation = system.verify();
  if (!violation.has_value()) {
    std::printf("VALID signed quorum system (n=%d, alpha=%d, %zu quorums)\n", n,
                alpha, system.num_quorums());
    Table table({"p", "availability"});
    for (double p : {0.1, 0.2, 0.3, 0.4}) {
      if (n <= 24)
        table.add_row({Table::fmt(p, 2), Table::fmt(system.availability(p), 6)});
    }
    if (n <= 24) table.print("availability");
    return 0;
  }
  std::printf("INVALID: quorums #%zu %s and #%zu %s satisfy neither "
              "intersection nor dual overlap >= %d\n",
              violation->first,
              system.quorums()[violation->first].to_string().c_str(),
              violation->second,
              system.quorums()[violation->second].to_string().c_str(),
              2 * alpha);
  return 1;
}

int cmd_profile(const Args& args) {
  auto family = make_family(args.gets("family", "optd"), args);
  const int samples = args.geti("samples", 5000);
  const AcceptanceProfile profile =
      acceptance_profile(*family, samples, Rng(args.geti("seed", 1)));
  Table table({"k live servers", "P[quorum exists | k]"});
  for (std::size_t k = 0; k < profile.probability.size(); ++k)
    table.add_row({std::to_string(k), Table::fmt(profile.probability[k], 4)});
  table.print("acceptance profile of " + family->name());
  std::printf("guaranteed-availability threshold: %d; impossible at or below: %d\n",
              profile.guaranteed_threshold(), profile.impossible_below());
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) items.push_back(item);
  return items;
}

std::vector<double> split_doubles(const std::string& csv) {
  std::vector<double> values;
  for (const std::string& item : split_list(csv)) values.push_back(std::stod(item));
  return values;
}

std::vector<int> split_ints(const std::string& csv) {
  std::vector<int> values;
  for (const std::string& item : split_list(csv)) values.push_back(std::stoi(item));
  return values;
}

int cmd_sweep(const Args& args) {
  const std::string kind = args.gets("kind", "avail");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.geti("seed", 1));
  // --batch scalar|batched|differential selects the chunk-kernel policy
  // (see DESIGN.md §3.12); all three publish identical bits, differential
  // additionally replays the scalar oracle per trial and aborts on any
  // disagreement.
  TrialOptions opts;
  const std::string batch = args.gets("batch", "scalar");
  if (!parse_batch_policy(batch, opts.batch)) {
    std::fprintf(stderr,
                 "unknown --batch policy '%s' (scalar|batched|differential)\n",
                 batch.c_str());
    return 2;
  }

  if (kind == "avail") {
    const std::vector<std::string> specs =
        split_list(args.gets("families", "optd,opta"));
    const std::vector<double> ps =
        split_doubles(args.gets("ps", "0.1,0.2,0.3,0.4"));
    const std::uint64_t samples = static_cast<std::uint64_t>(
        args.geti("samples", static_cast<int>(kAvailabilityMcSamples)));
    std::vector<AvailabilityCell> cells;
    std::vector<std::shared_ptr<QuorumFamily>> families;
    for (const std::string& spec : specs) families.push_back(make_family(spec, args));
    for (const auto& family : families)
      for (double p : ps) cells.push_back({family, p, samples, seed});
    const auto estimates = sweep_availability(cells, opts);
    Table table({"family", "p", "avail (MC)", "avail (closed form)"});
    for (std::size_t i = 0; i < cells.size(); ++i)
      table.add_row({cells[i].family->name(), Table::fmt(cells[i].p, 2),
                     Table::fmt(estimates[i].estimate(), 6),
                     Table::fmt(cells[i].family->availability(cells[i].p), 6)});
    table.print("availability sweep (" + std::to_string(cells.size()) +
                " cells, one pool submission)");
    return 0;
  }

  if (kind == "probes") {
    const std::vector<std::string> specs =
        split_list(args.gets("families", "optd,opta"));
    const std::vector<double> ps = split_doubles(args.gets("ps", "0.1,0.2,0.3"));
    const std::uint64_t trials =
        static_cast<std::uint64_t>(args.geti("trials", 20000));
    std::vector<ProbeCell> cells;
    std::vector<std::shared_ptr<QuorumFamily>> families;
    for (const std::string& spec : specs) families.push_back(make_family(spec, args));
    for (const auto& family : families)
      for (double p : ps) {
        ProbeCell cell;
        cell.family = family;
        cell.p = p;
        cell.trials = trials;
        cell.base = Rng(seed).split(cells.size());
        cells.push_back(std::move(cell));
      }
    const auto measured = sweep_probes(cells, opts);
    Table table({"family", "p", "E[probes]", "acquire rate", "load"});
    for (std::size_t i = 0; i < cells.size(); ++i)
      table.add_row({cells[i].family->name(), Table::fmt(cells[i].p, 2),
                     Table::fmt(measured[i].probes_overall.mean(), 3),
                     Table::fmt(measured[i].acquired.estimate(), 5),
                     Table::fmt(measured[i].load(), 4)});
    table.print("probe sweep (" + std::to_string(cells.size()) +
                " cells, one pool submission)");
    return 0;
  }

  if (kind == "nonintersect") {
    const int n = args.geti("n", 24);
    const std::vector<int> alphas = split_ints(args.gets("alphas", "1,2,3"));
    const std::vector<double> misses =
        split_doubles(args.gets("misses", "0.1,0.2,0.3"));
    const std::uint64_t trials =
        static_cast<std::uint64_t>(args.geti("trials", 100000));
    std::vector<NonintersectionCell> cells;
    for (int alpha : alphas)
      for (double miss : misses) {
        NonintersectionCell cell;
        cell.family = std::make_shared<OptDFamily>(n, alpha);
        cell.model.p = args.getd("p", 0.1);
        cell.model.link_miss = miss;
        cell.trials = trials;
        cell.base = Rng(seed).split(cells.size());
        cells.push_back(std::move(cell));
      }
    const auto stats = sweep_nonintersection(cells, opts);
    Table table({"alpha", "miss", "P[nonint] (MC)", "eps^2a bound"});
    for (std::size_t i = 0; i < cells.size(); ++i)
      table.add_row({std::to_string(cells[i].family->alpha()),
                     Table::fmt(cells[i].model.link_miss, 2),
                     Table::fmt_sci(stats[i].nonintersection.estimate()),
                     Table::fmt_sci(stats[i].bound)});
    table.print("OPT_d non-intersection sweep, n=" + std::to_string(n) + " (" +
                std::to_string(cells.size()) + " cells, one pool submission)");
    return 0;
  }

  std::fprintf(stderr, "unknown sweep kind '%s' (avail|probes|nonintersect)\n",
               kind.c_str());
  return 2;
}

int cmd_search(const Args& args) {
  AlphaSearchSpec spec;
  spec.n = args.geti("n", 24);
  spec.p = args.getd("p", 0.1);
  spec.link_miss = args.getd("miss", 0.2);
  spec.max_alpha = args.geti("max-alpha", 0);
  spec.exact = !args.flags.count("mc");
  spec.trials = static_cast<std::uint64_t>(args.geti("trials", 100000));
  spec.seed = static_cast<std::uint64_t>(args.geti("seed", 0x5ea4c4));

  SearchTargets targets;
  targets.max_nonintersection = args.getd("target-nonint", 1e-3);
  targets.min_availability = args.getd("target-avail", 0.0);

  const AlphaSearchResult result = find_min_alpha(spec, targets);
  Table ladder({"alpha", "P[nonint]", "availability", "meets targets"});
  for (const AlphaCandidate& candidate : result.evaluated)
    ladder.add_row({std::to_string(candidate.alpha),
                    Table::fmt_sci(candidate.nonintersection),
                    Table::fmt(candidate.availability, 6),
                    candidate.meets_targets ? "yes" : "no"});
  ladder.print("alpha ladder (n=" + std::to_string(spec.n) +
               ", p=" + Table::fmt(spec.p, 2) +
               ", miss=" + Table::fmt(spec.link_miss, 2) +
               (spec.exact ? ", exact DP)" : ", Monte Carlo sweep)"));
  if (!result.feasible) {
    std::printf("INFEASIBLE: no alpha <= %d meets nonint <= %s and avail >= %s\n",
                result.evaluated.empty() ? 0 : result.evaluated.back().alpha,
                Table::fmt_sci(targets.max_nonintersection).c_str(),
                Table::fmt(targets.min_availability, 4).c_str());
    return 1;
  }
  std::printf("minimal alpha = %d  (P[nonint] %s, availability %.6f)\n",
              result.alpha, Table::fmt_sci(result.nonintersection).c_str(),
              result.availability);

  // Race the UQ + OPT_a compositions at the winning alpha.
  CompositionSearchSpec comp;
  comp.alpha = result.alpha;
  comp.n = args.geti("compose-n", std::max(spec.n, 16 * result.alpha));
  comp.p = args.getd("compose-p", spec.p);
  comp.base_trials = static_cast<std::uint64_t>(args.geti("base-trials", 2000));
  comp.rounds = args.geti("rounds", 3);
  comp.seed = static_cast<std::uint64_t>(args.geti("seed", 0xc0317));
  const CompositionSearchResult race = find_best_composition(comp, targets);
  if (!race.feasible) {
    std::printf("composition race skipped (no candidate pool or availability "
                "%.6f below floor at n=%d)\n",
                race.availability, comp.n);
    return 0;
  }
  Table table({"composition", "E[probes]", "load", "acquire", "trials",
               "eliminated"});
  for (const CompositionCandidateScore& score : race.candidates)
    table.add_row({score.name, Table::fmt(score.expected_probes, 3),
                   Table::fmt(score.load, 4), Table::fmt(score.acquire_rate, 4),
                   std::to_string(score.trials),
                   score.eliminated_round < 0
                       ? "survived"
                       : "round " + std::to_string(score.eliminated_round)});
  table.print("composition race at alpha=" + std::to_string(comp.alpha) +
              ", n=" + std::to_string(comp.n) + " (successive halving)");
  std::printf("best composition: %s  (E[probes] %.3f, load %.4f, "
              "availability %.6f)\n",
              race.best.c_str(), race.expected_probes, race.load,
              race.availability);
  return 0;
}

int cmd_trace(const Args& args) {
  TraceConfig config;
  config.num_servers = args.geti("servers", 30);
  config.num_observations = args.geti("obs", 200000);
  config.model.p = args.getd("p", 0.05);
  config.model.link_miss = args.getd("miss", 0.02);
  config.model.partition_rate = args.getd("partition-rate", 0.0);
  config.model.partition_fraction = args.getd("partition-fraction", 0.5);
  const MismatchHistogram hist = run_trace(config, Rng(args.geti("seed", 1)));
  const auto predicted = independent_prediction(config, 8);
  Table table({"k", "P(k) measured", "P(k) iid prediction"});
  for (std::size_t k = 0; k <= 8; ++k)
    table.add_row({std::to_string(k), Table::fmt_sci(hist.at(k)),
                   Table::fmt_sci(predicted[k])});
  table.print("simultaneous-mismatch histogram");
  std::printf("log10 slope %.3f, max residual %.3f\n", hist.log10_slope(6),
              hist.max_log10_residual(6));
  return 0;
}

int cmd_chaos(const Args& args) {
  std::shared_ptr<const QuorumFamily> family;
  std::vector<ChaosScenario> scenarios;
  const std::string pick = args.gets("scenario", "all");
  const std::string file = args.gets("scenario-file", "");

  if (!file.empty()) {
    // Data-driven replay: the scenario comes from a JSON file written by
    // --dump-scenarios (or by hand against scenarios/README.md); malformed
    // input is rejected with a path:line:col complaint and exit code 2.
    ChaosScenario loaded;
    std::string error;
    if (!load_chaos_scenario(file, &loaded, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    family = loaded.family.empty()
                 ? std::shared_ptr<const QuorumFamily>(
                       make_family(args.gets("family", "optd"), args))
                 : loaded.family.make();
    if (family == nullptr) return 2;
    scenarios.push_back(std::move(loaded));
  } else {
    const FamilySpec spec = spec_from_args(args.gets("family", "optd"), args);
    family = spec.make();
    if (family == nullptr) return 2;
    scenarios = builtin_chaos_scenarios(spec);

    // Plain families carry no byzantine cell in the builtin grid (no
    // masking vote to survive the liars); naming it explicitly builds one
    // anyway with --b liars (default 1) — the designed-to-fail run that
    // demonstrates the fabricated-write invariant tripping and dumping a
    // black box.
    if (family->masking_b() == 0 &&
        (pick == "byzantine" || args.flags.count("list") ||
         args.flags.count("list-scenarios"))) {
      scenarios.push_back(byzantine_chaos_scenario(*family, args.geti("b", 1)));
      scenarios.back().family = spec;
    }
    // The stale-view detector check is explicit-only (it is designed to
    // fail): build it when named or when dumping the scenario set.
    if (spec.resizable() &&
        (pick == "stale_view_forever" || args.flags.count("dump-scenarios")))
      scenarios.push_back(stale_view_chaos_scenario(spec));
  }

  // --list-scenarios: the machine-facing inventory (name, family,
  // invariant budget, plan sizes) of everything buildable here.
  if (args.flags.count("list-scenarios")) {
    Table table({"scenario", "family", "floor", "envelope", "faults", "churn",
                 "invariants"});
    for (const ChaosScenario& s : scenarios) {
      std::string inv;
      if (s.invariants.expect_ts_regressions) inv += "expect-regr ";
      if (s.invariants.allow_lost_writes) inv += "allow-lost ";
      if (s.invariants.require_view_convergence) inv += "view-conv ";
      if (s.invariants.check_cross_epoch) inv += "cross-epoch ";
      if (inv.empty()) inv = "-";
      table.add_row({s.name,
                     s.family.empty() ? family->name() : s.family.label(),
                     Table::fmt(s.invariants.availability_floor, 4),
                     Table::fmt_sci(s.invariants.stale_envelope),
                     std::to_string(s.plan.events.size()),
                     std::to_string(s.churn.events.size()), inv});
    }
    table.print("chaos scenario grid (" + family->name() + ")");
    return 0;
  }

  // --dump-scenarios DIR: write every buildable scenario as a JSON file
  // (byte-deterministic; reload with --scenario-file). The directory must
  // exist.
  if (args.flags.count("dump-scenarios")) {
    const std::string dir = args.gets("dump-scenarios", "");
    if (dir.empty() || dir == "1") {
      std::fprintf(stderr, "--dump-scenarios needs a directory operand\n");
      return 2;
    }
    int written = 0;
    for (const ChaosScenario& s : scenarios) {
      if (s.family.empty()) continue;  // nothing to name in the file
      const std::string path = dir + "/" + s.name + ".json";
      if (!write_chaos_scenario(s, path)) return 1;
      std::printf("wrote %s\n", path.c_str());
      ++written;
    }
    return written > 0 ? 0 : 1;
  }

  // CI smoke hook: an impossible availability floor trips every scenario,
  // proving the violation path (exit 1 + black-box dump) end to end.
  if (args.flags.count("force-violation"))
    for (ChaosScenario& s : scenarios) s.invariants.availability_floor = 1.01;
  if (args.flags.count("list")) {
    for (const ChaosScenario& s : scenarios)
      std::printf("%-16s %s\n", s.name.c_str(), s.description.c_str());
    return 0;
  }
  if (pick != "all" && file.empty()) {
    std::vector<ChaosScenario> chosen;
    for (ChaosScenario& s : scenarios)
      if (s.name == pick) chosen.push_back(std::move(s));
    if (chosen.empty()) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   pick.c_str());
      return 2;
    }
    scenarios = std::move(chosen);
  }

  const int replicates = args.geti("replicates", 4);

  // The flight recorder is always on for chaos runs: when an invariant
  // trips, run_chaos writes the merged black box automatically.
  obs::TelemetryConfig tc = obs::current_config();
  tc.recorder = true;
  obs::configure(tc);
  obs::reset_flight_recorder();

  const std::vector<ChaosCellResult> results =
      run_chaos(*family, scenarios, replicates, {},
                args.gets("blackbox", "chaos_blackbox.jsonl"));

  Table table({"scenario", "avail", "floor", "stale", "envelope", "retries",
               "deadline", "ts-regr", "lost", "fabricated", "verdict"});
  bool all_passed = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ChaosCellResult& cell = results[i];
    const ChaosInvariants& inv = scenarios[i].invariants;
    all_passed = all_passed && cell.passed();
    table.add_row({cell.scenario, Table::fmt(cell.availability),
                   Table::fmt(inv.availability_floor),
                   Table::fmt_sci(cell.stale_fraction),
                   Table::fmt_sci(inv.stale_envelope),
                   std::to_string(cell.retries),
                   std::to_string(cell.deadline_failures),
                   std::to_string(cell.server_ts_regressions),
                   std::to_string(cell.lost_writes),
                   std::to_string(cell.fabricated_reads),
                   cell.passed() ? "pass" : "FAIL"});
  }
  table.print("chaos invariants (" + std::to_string(replicates) +
              " replicates per scenario)");
  for (const ChaosCellResult& cell : results)
    if (cell.epoch_transitions > 0 || cell.epoch_rejects > 0)
      std::printf("churn %-18s transitions=%ld refreshes=%ld rejects=%ld "
                  "retired_reads=%ld stale_views_at_end=%ld\n",
                  cell.scenario.c_str(), cell.epoch_transitions,
                  cell.view_refreshes, cell.epoch_rejects, cell.retired_reads,
                  cell.stale_views_at_end);
  for (const ChaosCellResult& cell : results)
    for (const ChaosViolation& v : cell.violations)
      std::printf("VIOLATION %s/%s: %s\n", cell.scenario.c_str(),
                  v.invariant.c_str(), v.detail.c_str());
  return all_passed ? 0 : 1;
}

int cmd_serve(const Args& args) {
  // --scenario-file replays a chaos scenario's data (family, fault plan,
  // churn plan, knobs) through the staged service; explicit flags still
  // override the file's values. Mutually exclusive with --scenario.
  const std::string file = args.gets("scenario-file", "");
  ChaosScenario from_file;
  const bool have_file = !file.empty();
  if (have_file) {
    std::string error;
    if (!load_chaos_scenario(file, &from_file, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    if (args.flags.count("scenario")) {
      std::fprintf(stderr, "--scenario and --scenario-file are exclusive\n");
      return 2;
    }
  }
  std::shared_ptr<const QuorumFamily> family =
      have_file && !from_file.family.empty()
          ? from_file.family.make()
          : std::shared_ptr<const QuorumFamily>(
                make_family(args.gets("family", "optd"), args));
  if (family == nullptr) return 2;

  // --rate / --duration go through the validating parser: a malformed value
  // is rejected on stderr and the command exits, mirroring how --threads and
  // SQS_THREADS share parse_thread_count (which init_threads_from_args
  // already applied; threads = 0 below picks up that default). A scenario
  // file supplies the duration/clients/seed defaults so the replayed fault
  // and churn timelines land where the scenario placed them.
  LoadGenConfig load;
  if (args.flags.count("rate")) {
    load.rate = parse_positive_double("--rate", args.gets("rate", "").c_str());
    if (load.rate == 0.0) return 2;
  } else {
    load.rate = 2000.0;
  }
  if (args.flags.count("duration")) {
    load.duration =
        parse_positive_double("--duration", args.gets("duration", "").c_str());
    if (load.duration == 0.0) return 2;
  } else {
    load.duration = have_file ? from_file.config.duration : 5.0;
  }
  load.read_fraction =
      args.getd("read-fraction", have_file ? from_file.config.read_fraction : 0.8);
  load.num_clients =
      args.geti("clients", have_file ? from_file.config.num_clients : 64);
  load.seed = static_cast<std::uint64_t>(args.geti(
      "seed", have_file ? static_cast<int>(from_file.config.seed) : 1));

  ServiceConfig config;
  if (have_file) {
    config.network = from_file.config.network;
    config.server = from_file.config.server;
    config.lie_tolerance = from_file.config.client.lie_tolerance;
    config.refresh_views = from_file.config.client.refresh_views;
    config.view_fetch_delay = from_file.config.client.view_fetch_delay;
    config.max_view_fetches = from_file.config.client.max_view_fetches;
    config.plan = from_file.plan;
    if (!from_file.churn.empty()) {
      config.epochs =
          build_epoch_schedule(from_file.churn, family_factory(from_file.family),
                               family->universe_size());
      if (config.epochs == nullptr) return 2;
    }
  }
  config.num_clients = load.num_clients;
  config.probe_timeout = args.getd(
      "timeout", have_file ? from_file.config.client.probe_timeout : 0.25);
  config.batch = args.geti("batch", 256);
  config.seed = load.seed;
  config.server.mean_up = args.getd("mean-up", config.server.mean_up);
  config.server.mean_down = args.getd("mean-down", config.server.mean_down);
  config.server.service_time =
      args.getd("service-time", config.server.service_time);

  const int n = family->universe_size();
  const double d = load.duration;
  const std::string scenario =
      have_file ? from_file.name : args.gets("scenario", "none");
  if (have_file) {
    // plan/churn already installed above
  } else if (scenario == "partition") {
    config.plan.server_partition(0.3 * d, 0, 0.3 * d);
  } else if (scenario == "churn") {
    config.plan = make_churn_plan(n, 0.1 * d, 0.2 * d, std::max(1, n / 6),
                                  0.1 * d, d);
  } else if (scenario == "gray") {
    config.plan = make_gray_plan(n, std::max(1, n / 4), 8.0, 0.2 * d, 0.6 * d);
  } else if (scenario == "lossy") {
    config.plan = make_lossy_plan(0.1 * d, d, 0.25 * d, 0.1 * d, 0.3, 4.0);
  } else if (scenario == "byzantine") {
    // --b liars (default: the family's tolerance, else 1) cycle through the
    // lie modes for 80% of the run. A masking family survives with zero
    // fabricated reads (vote + replica certs); a plain family demonstrates
    // the invariant tripping. --no-verify-certs drops the signature check.
    const int b = args.geti("b", std::max(1, family->masking_b()));
    config.plan = make_byzantine_plan(n, b, 0.1 * d, 0.8 * d);
    config.lie_tolerance = family->masking_b();
  } else if (scenario != "none") {
    std::fprintf(
        stderr,
        "unknown scenario '%s' (none|partition|churn|gray|lossy|byzantine)\n",
        scenario.c_str());
    return 2;
  }
  if (args.flags.count("no-verify-certs")) config.verify_replica_certs = false;

  const int world =
      config.epochs != nullptr ? config.epochs->num_logical : n;
  if (!load.validate() || !config.validate(world)) return 2;

  // Windowed time-series (--timeline FILE [--timeline-window-ms N]) and the
  // always-on flight recorder: serve runs record the black box so a lost
  // acked write leaves a causal dump behind.
  const obs::TelemetryArgs& targs = obs::telemetry_args();
  if (!targs.timeline_path.empty())
    config.timeline_window_us = targs.timeline_window_us;
  obs::TelemetryConfig tc = obs::current_config();
  tc.recorder = true;
  obs::configure(tc);
  obs::reset_flight_recorder();

  const std::vector<std::uint8_t> requests = generate_load(load);
  ServiceRunner runner(*family, config);
  const ServiceResult r = runner.serve(requests);

  Table table({"metric", "value"});
  table.add_row({"ops served", std::to_string(r.requests)});
  table.add_row({"availability", Table::fmt(r.availability(), 6)});
  table.add_row({"stale reads", std::to_string(r.stale_reads)});
  table.add_row({"probes/op", Table::fmt(static_cast<double>(r.probes) /
                                             std::max<std::uint64_t>(1, r.reads + r.writes),
                                         3)});
  table.add_row({"p50 latency (ms)", Table::fmt(r.latency_us.p50() / 1e3, 3)});
  table.add_row({"p99 latency (ms)", Table::fmt(r.latency_us.p99() / 1e3, 3)});
  table.add_row({"p999 latency (ms)", Table::fmt(r.latency_us.p999() / 1e3, 3)});
  table.add_row({"net delivered / dropped",
                 std::to_string(r.net_delivered) + " / " +
                     std::to_string(r.net_dropped)});
  table.add_row({"replica drops", std::to_string(r.replica_dropped)});
  table.add_row({"ts regressions", std::to_string(r.ts_regressions)});
  table.add_row({"cert rejects", std::to_string(r.cert_rejects)});
  table.add_row({"fabricated reads", std::to_string(r.fabricated_reads)});
  table.add_row({"lost acked writes", std::to_string(r.lost_acked_writes)});
  if (config.epochs != nullptr) {
    table.add_row({"epoch transitions", std::to_string(r.epoch_transitions)});
    table.add_row({"view refreshes", std::to_string(r.view_refreshes)});
    table.add_row({"epoch rejects", std::to_string(r.epoch_rejects)});
    table.add_row({"retired reads", std::to_string(r.retired_reads)});
    table.add_row({"view epoch / current", std::to_string(r.view_epoch) +
                                               " / " +
                                               std::to_string(r.current_epoch)});
  }
  table.add_row({"wall ms", Table::fmt(r.wall_ms, 1)});
  table.add_row({"wall ops/s", Table::fmt(r.wall_ops_per_sec(), 0)});
  table.print("served " + family->name() + " at " + Table::fmt(load.rate, 0) +
              " ops/s for " + Table::fmt(load.duration, 1) +
              "s (scenario: " + scenario + ")");
  std::printf("reply fingerprint %016llx (bit-identical for any --threads)\n",
              static_cast<unsigned long long>(r.reply_fingerprint));

  if (!targs.timeline_path.empty()) {
    if (!runner.timeline().write_jsonl(targs.timeline_path)) return 1;
    std::printf("[obs] timeline JSONL -> %s\n", targs.timeline_path.c_str());
  }
  if (r.lost_acked_writes > 0 || r.fabricated_reads > 0 ||
      r.retired_reads > 0) {
    const std::string blackbox = args.gets("blackbox", "serve_blackbox.jsonl");
    const char* why = r.lost_acked_writes > 0 ? "serve: lost acked write"
                     : r.fabricated_reads > 0 ? "serve: fabricated read"
                                              : "serve: read from retired replica";
    if (obs::write_flight_recorder(blackbox, why))
      std::printf("[serve] flight recorder dump -> %s\n", blackbox.c_str());
  }
  return r.lost_acked_writes > 0 || r.fabricated_reads > 0 ||
                 r.retired_reads > 0
             ? 1
             : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: sqs_cli <avail|probes|nonintersect|verify|trace|profile|"
               "sweep|search|chaos|serve> "
               "[--flags]\n  global: --threads N (or SQS_THREADS) for the "
               "parallel trial runtime;\n          --metrics FILE / --trace FILE "
               "/ --trace-jsonl FILE for telemetry;\n          "
               "--flight-recorder-events N for the black-box ring capacity\n"
               "  sweep: --batch scalar|batched|differential picks the chunk "
               "kernel\n         (same bits; differential cross-checks every "
               "trial)\n"
               "  chaos: --scenario NAME|all "
               "--replicates R --family F --n N --alpha A (--list)\n"
               "         --scenario-file F.json --list-scenarios "
               "--dump-scenarios DIR\n"
               "         --blackbox FILE --force-violation (byzantine: --b "
               "liars on plain families)\n  serve: "
               "--rate R --duration S --clients C --scenario "
               "none|partition|churn|gray|lossy|byzantine\n         "
               "--scenario-file F.json (replays family+faults+churn) "
               "--timeline FILE\n         "
               "--timeline-window-ms N --blackbox FILE --no-verify-certs\n"
               "  families incl. masking-majority|masking-opta|masking-comp "
               "(--b liars, default 1)\n  see the "
               "header of tools/sqs_cli.cpp\n");
  return 2;
}

}  // namespace
}  // namespace sqs

int main(int argc, char** argv) {
  if (argc < 2) return sqs::usage();
  sqs::init_threads_from_args(argc, argv);
  if (!sqs::obs::init_telemetry_from_args(argc, argv).ok) return 2;
  const std::string command = argv[1];
  const sqs::Args args = sqs::parse(argc, argv, 2);
  int rc = 2;
  if (command == "avail") rc = sqs::cmd_avail(args);
  else if (command == "probes") rc = sqs::cmd_probes(args);
  else if (command == "nonintersect") rc = sqs::cmd_nonintersect(args);
  else if (command == "verify") rc = sqs::cmd_verify(args);
  else if (command == "trace") rc = sqs::cmd_trace(args);
  else if (command == "profile") rc = sqs::cmd_profile(args);
  else if (command == "sweep") rc = sqs::cmd_sweep(args);
  else if (command == "search") rc = sqs::cmd_search(args);
  else if (command == "chaos") rc = sqs::cmd_chaos(args);
  else if (command == "serve") rc = sqs::cmd_serve(args);
  else return sqs::usage();
  // A failed telemetry export is a real failure: the requested evidence is
  // missing, so the run must not look green.
  if (!sqs::obs::export_telemetry_files() && rc == 0) rc = 1;
  return rc;
}
