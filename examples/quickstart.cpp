// Quickstart: the public API in five minutes.
//
//   1. Signed sets and the SQS compatibility predicate (Definition 3).
//   2. Building and verifying an explicit SQS.
//   3. The scalable constructions: OPT_a, OPT_d, UQ + OPT_a.
//   4. Acquiring a quorum with a probe strategy against failures.
//   5. Availability and probe-complexity numbers from the analysis API.
//
// Build and run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/composition.h"
#include "core/constructions.h"
#include "core/explicit_sqs.h"
#include "probe/engine.h"
#include "probe/serverprobe.h"
#include "uqs/majority.h"

int main() {
  using namespace sqs;

  // --- 1. Signed sets -----------------------------------------------------
  // The paper's introductory example over three servers: quorum {-1, 3}
  // means "I could not reach server 1, and I reached server 3".
  const SignedSet q1 = SignedSet::from_literals(3, {-1, 3});
  const SignedSet q2 = SignedSet::from_literals(3, {1, -2, -3});
  std::printf("q1 = %s, q2 = %s\n", q1.to_string().c_str(), q2.to_string().c_str());
  std::printf("positive intersection: %s, dual overlap: %zu\n",
              SignedSet::positively_intersects(q1, q2) ? "yes" : "no",
              SignedSet::dual_overlap(q1, q2));

  // --- 2. An explicit SQS -------------------------------------------------
  ExplicitSqs tiny(3, /*alpha=*/1);
  tiny.add_quorum(q1);
  tiny.add_quorum(q2);
  std::printf("{q1,q2} is a valid SQS with alpha=1: %s\n",
              tiny.is_valid_sqs() ? "yes" : "no");
  std::printf("its availability at p=0.2: %.4f\n", tiny.availability(0.2));

  // --- 3. Scalable constructions ------------------------------------------
  const int n = 50, alpha = 2;
  const OptDFamily opt_d(n, alpha);
  std::printf("\n%s: available as long as ANY %d of %d servers are up\n",
              opt_d.name().c_str(), alpha, n);
  std::printf("availability at p=0.4: %.6f (majority: %.6f)\n",
              opt_d.availability(0.4), MajorityFamily(n).availability(0.4));

  // --- 4. Acquire a quorum under failures ----------------------------------
  // Knock out 40 of the 50 servers; OPT_d still finds a quorum, probing
  // only a handful of servers.
  Rng rng(7);
  Configuration config(Bitset(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) config.set_up(i, rng.bernoulli(0.2));
  std::printf("\nlive servers: %zu of %d\n", config.num_up(), n);

  auto strategy = opt_d.make_probe_strategy();
  ConfigurationOracle oracle(&config);
  const ProbeRecord record = run_probe(*strategy, oracle, nullptr);
  std::printf("acquired: %s after %d probes\n",
              record.acquired ? "yes" : "no", record.num_probes);
  if (record.acquired)
    std::printf("quorum: %s\n", record.quorum.to_string().c_str());

  // --- 5. Analysis ----------------------------------------------------------
  std::printf("\nexpected probes (exact g(n)) at p=0.4: %.3f  (< 2a/(1-p) = %.3f)\n",
              serverprobe_complexity(n, alpha, 0.4),
              serverprobe_upper_bound(alpha, 0.4));

  // Composition: majority over the first 9 servers for low load, OPT_a
  // underneath for availability.
  auto maj = std::make_shared<MajorityFamily>(9);
  const CompositionFamily comp(maj, n, alpha);
  std::printf("%s availability at p=0.4: %.6f\n", comp.name().c_str(),
              comp.availability(0.4));
  return 0;
}
