// A wide-area lease (coarse mutual exclusion) service on SQS quorums —
// the "mutual exclusion" use case from the paper's first sentence.
//
// Protocol: the lease is a replicated register holding (owner, expiry).
// To acquire, a client reads the register through a quorum; if the lease is
// free or expired it writes (me, now + duration), re-reads to confirm its
// value survived the write race, and then considers itself the holder until
// expiry. A *stale conflict* — acquiring while a previously-granted lease
// is still live — requires the acquirer's quorums to have missed the
// holder's write entirely, so its rate tracks the epsilon^(2a)
// non-intersection bound while availability tracks OPT_a.
//
// Build and run:  ./build/examples/lease_service

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/constructions.h"
#include "sim/client.h"
#include "sim/harness.h"
#include "uqs/majority.h"
#include "util/table.h"

namespace sqs {
namespace {

struct LeaseStats {
  long attempts = 0;
  long grants = 0;
  long conflicts = 0;  // overlapping belief intervals
  RunningStat probes;
};

// Packs (expiry in ms, owner) into the register value.
std::uint64_t pack(double expiry_s, int owner) {
  return (static_cast<std::uint64_t>(expiry_s * 1000.0) << 8) |
         static_cast<std::uint64_t>(owner & 0xFF);
}
double unpack_expiry(std::uint64_t value) {
  return static_cast<double>(value >> 8) / 1000.0;
}

LeaseStats run_lease_experiment(const QuorumFamily& family, double duration,
                                std::uint64_t seed) {
  struct Holder {
    double until = -1.0;
    double granted_at = -1.0;
  };
  LeaseStats stats;
  Simulator sim;
  Rng rng(seed);
  const int n = family.universe_size();
  const int num_clients = 6;
  const double lease_duration = 5.0;

  NetworkConfig net_config;
  net_config.link_mean_up = 20.0;  // fairly flaky: ~5% link downtime
  net_config.link_mean_down = 1.0;
  Network net(&sim, num_clients, n, net_config, rng.split("net"));

  ServerConfig server_config;
  server_config.mean_up = 30.0;
  server_config.mean_down = 3.0;
  std::vector<SimServer> servers;
  servers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    servers.emplace_back(&sim, i, server_config, rng.split(100 + i));

  std::vector<SimClient> clients;
  std::vector<Holder> holders(static_cast<std::size_t>(num_clients));
  ClientConfig client_config;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c)
    clients.emplace_back(&sim, &net, &servers, c, &family, client_config,
                         rng.split(200 + c));

  // Conflict detection. Two grants whose acquisitions overlapped in time
  // can both succeed under ANY register-based lease protocol (the register
  // orders the writes but cannot serialize the holders' beliefs), so those
  // races are excluded. A *stale* conflict — my acquisition STARTED after
  // another holder's grant completed, yet I still read the lease as free —
  // requires my quorum to have missed the holder's write: that is exactly
  // quorum non-intersection, the event the epsilon^(2a) bound prices.
  auto record_grant = [&](int me, double until, double started_at) {
    for (int other = 0; other < num_clients; ++other) {
      if (other == me) continue;
      const Holder& h = holders[static_cast<std::size_t>(other)];
      if (h.until > sim.now() && h.granted_at < started_at) ++stats.conflicts;
    }
    holders[static_cast<std::size_t>(me)] = Holder{until, sim.now()};
    ++stats.grants;
  };

  // Each client loops: wait, try to acquire if not holding.
  std::function<void(int)> schedule_attempt = [&](int c) {
    if (sim.now() >= duration) return;
    sim.schedule(rng.exponential(1.0 / 2.0), [&, c] {
      if (sim.now() >= duration) return;
      ++stats.attempts;
      const double started_at = sim.now();
      clients[static_cast<std::size_t>(c)].read([&, c, started_at](ReadResult r) {
        stats.probes.add(r.num_probes);
        const bool free = !r.ok || unpack_expiry(r.value) <= sim.now();
        if (!r.ok || !free) {
          schedule_attempt(c);
          return;
        }
        const double until = sim.now() + lease_duration;
        const std::uint64_t my_value = pack(until, c);
        clients[static_cast<std::size_t>(c)].write(
            my_value, [&, c, until, my_value, started_at](WriteResult w) {
              stats.probes.add(w.num_probes);
              if (!w.ok) {
                schedule_attempt(c);
                return;
              }
              // Confirmation read: two contenders can race past the "free"
              // check, but the register orders their writes; only the one
              // whose value survived may take the lease. A false confirm
              // now requires quorum non-intersection — the event the SQS
              // epsilon bound prices.
              clients[static_cast<std::size_t>(c)].read(
                  [&, c, until, my_value, started_at](ReadResult confirm) {
                    stats.probes.add(confirm.num_probes);
                    if (confirm.ok && confirm.value == my_value)
                      record_grant(c, until, started_at);
                    schedule_attempt(c);
                  });
            });
      });
    });
  };
  for (int c = 0; c < num_clients; ++c) schedule_attempt(c);
  sim.run_until(duration + 30.0);
  return stats;
}

}  // namespace
}  // namespace sqs

int main() {
  using namespace sqs;
  std::printf("Wide-area lease service: conflicts vs alpha.\n");
  const double duration = 4000.0;
  Table table({"family", "attempts", "grants", "conflicts",
               "conflict rate", "probes/step"});
  const MajorityFamily maj(12);
  const OptDFamily d1(12, 1), d2(12, 2), d3(12, 3);
  for (const QuorumFamily* family :
       std::initializer_list<const QuorumFamily*>{&maj, &d1, &d2, &d3}) {
    const LeaseStats stats = run_lease_experiment(*family, duration, 99);
    table.add_row({family->name(), std::to_string(stats.attempts),
                   std::to_string(stats.grants), std::to_string(stats.conflicts),
                   stats.grants > 0
                       ? Table::fmt_sci(static_cast<double>(stats.conflicts) /
                                        static_cast<double>(stats.grants))
                       : "-",
                   Table::fmt(stats.probes.mean(), 2)});
  }
  table.print("Lease service over 12 servers, 6 contending clients");
  std::printf(
      "\nWhat to look for: stale conflicts (a lease acquired while a\n"
      "previously-granted lease is still live) are impossible for majority\n"
      "(strict intersection) and for SQS require 2 alpha simultaneous\n"
      "mismatches: nonzero at alpha=1, vanishing by alpha=2-3 — while OPT_d\n"
      "keeps probing costs at a fraction of majority's.\n");
  return 0;
}
