// A load-balanced replicated object store — the Sect. 6.3 / Sect. 7 story.
//
// Scenario: o objects replicated on the same n servers. Three deployments:
//   (a) naive OPT_d, all objects share one probe order: the first server
//       melts (load 1.0);
//   (b) OPT_d with per-object rotated orders (Sect. 6.3): aggregate load is
//       flat at ~E[probes]/n while keeping OPT_d's guarantees per object;
//   (c) Paths(l) + OPT_a composition: per-acquisition load O(1/l) without
//       needing many objects.
// The example prints each deployment's per-server load histogram.
//
// Build and run:  ./build/examples/load_balanced_store

#include <cstdio>
#include <memory>
#include <vector>

#include "core/composition.h"
#include "core/constructions.h"
#include "sim/store.h"
#include "probe/engine.h"
#include "uqs/paths.h"
#include "util/table.h"

namespace sqs {
namespace {

struct LoadProfile {
  std::vector<double> per_server;
  double max_load = 0.0;
  double min_load = 0.0;
  double mean_probes = 0.0;
};

// Runs `ops` acquisitions using strategies produced by `make_strategy(obj)`
// for a random object each time, against i.i.d. failures.
template <typename MakeStrategy>
LoadProfile measure(int n, int num_objects, int ops, double p,
                    MakeStrategy&& make_strategy, Rng rng) {
  std::vector<long> counts(static_cast<std::size_t>(n), 0);
  long probes = 0;
  for (int t = 0; t < ops; ++t) {
    const int object = static_cast<int>(rng.next_below(num_objects));
    auto strategy = make_strategy(object);
    Configuration c(Bitset(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) c.set_up(i, !rng.bernoulli(p));
    ConfigurationOracle oracle(&c);
    Rng srng = rng.split(t);
    const ProbeRecord record = run_probe(*strategy, oracle, &srng);
    probes += record.num_probes;
    record.probed.positive().for_each([&](std::size_t i) { ++counts[i]; });
    record.probed.negative().for_each([&](std::size_t i) { ++counts[i]; });
  }
  LoadProfile profile;
  profile.per_server.resize(static_cast<std::size_t>(n));
  profile.min_load = 1.0;
  for (int i = 0; i < n; ++i) {
    const double f = static_cast<double>(counts[static_cast<std::size_t>(i)]) / ops;
    profile.per_server[static_cast<std::size_t>(i)] = f;
    profile.max_load = std::max(profile.max_load, f);
    profile.min_load = std::min(profile.min_load, f);
  }
  profile.mean_probes = static_cast<double>(probes) / ops;
  return profile;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  double hi = 0.0;
  for (double v : values) hi = std::max(hi, v);
  for (double v : values) {
    const int idx = hi > 0 ? static_cast<int>(v / hi * 7.0 + 0.5) : 0;
    out += levels[idx];
  }
  return out;
}

}  // namespace
}  // namespace sqs

int main() {
  using namespace sqs;
  const int n = 24, alpha = 2, num_objects = 24, ops = 60000;
  const double p = 0.15;
  std::printf("Load-balanced store: %d objects on %d servers, p=%.2f\n",
              num_objects, n, p);

  // (a) one shared OPT_d order.
  const OptDFamily shared(n, alpha);
  const LoadProfile naive = measure(
      n, num_objects, ops, p, [&](int) { return shared.make_probe_strategy(); },
      Rng(1));

  // (b) rotated per-object orders.
  std::vector<OptDFamily> rotated;
  rotated.reserve(static_cast<std::size_t>(num_objects));
  for (int o = 0; o < num_objects; ++o) {
    OptDFamily fam(n, alpha);
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) order[static_cast<std::size_t>(j)] = (o + j) % n;
    fam.set_probe_order(order);
    rotated.push_back(std::move(fam));
  }
  const LoadProfile balanced = measure(
      n, num_objects, ops, p,
      [&](int o) { return rotated[static_cast<std::size_t>(o)].make_probe_strategy(); },
      Rng(2));

  // (c) Paths composition on its own k=24 universe (same n).
  auto paths = std::make_shared<PathsFamily>(3);  // k = 24 == n
  const CompositionFamily comp(paths, n, alpha);
  const LoadProfile composed = measure(
      n, num_objects, ops, p, [&](int) { return comp.make_probe_strategy(); },
      Rng(3));

  Table table({"deployment", "max server load", "min server load",
               "E[probes]/op", "per-server profile"});
  table.add_row({"(a) OPT_d shared order", Table::fmt(naive.max_load, 3),
                 Table::fmt(naive.min_load, 3),
                 Table::fmt(naive.mean_probes, 2), sparkline(naive.per_server)});
  table.add_row({"(b) OPT_d rotated orders", Table::fmt(balanced.max_load, 3),
                 Table::fmt(balanced.min_load, 3),
                 Table::fmt(balanced.mean_probes, 2),
                 sparkline(balanced.per_server)});
  table.add_row({"(c) Paths(3)+OPT_a", Table::fmt(composed.max_load, 3),
                 Table::fmt(composed.min_load, 3),
                 Table::fmt(composed.mean_probes, 2),
                 sparkline(composed.per_server)});
  table.print("Per-server load under three deployments (direct probe engine)");

  // The same rotation story on the full simulated stack: timeout-based
  // probing, flapping links, live servers — per Sect. 6.3 the per-object
  // guarantees are untouched while fleet load flattens.
  StoreExperimentConfig sim_config;
  sim_config.num_servers = n;
  sim_config.num_objects = num_objects;
  sim_config.alpha = alpha;
  sim_config.num_clients = 8;
  sim_config.duration = 600.0;
  sim_config.server.mean_up = 17.0;
  sim_config.server.mean_down = 3.0;  // p = 0.15 matching the static runs
  sim_config.rotate_orders = false;
  const StoreExperimentResult sim_shared = run_store_experiment(sim_config);
  sim_config.rotate_orders = true;
  const StoreExperimentResult sim_rotated = run_store_experiment(sim_config);
  Table sim_table({"deployment", "availability", "max load", "min load",
                   "probes/op", "stale reads"});
  sim_table.add_row({"shared order (simulated)",
                     Table::fmt(sim_shared.availability(), 4),
                     Table::fmt(sim_shared.max_server_load(), 3),
                     Table::fmt(sim_shared.min_server_load(), 3),
                     Table::fmt(sim_shared.probes_per_op.mean(), 2),
                     std::to_string(sim_shared.stale_reads)});
  sim_table.add_row({"rotated orders (simulated)",
                     Table::fmt(sim_rotated.availability(), 4),
                     Table::fmt(sim_rotated.max_server_load(), 3),
                     Table::fmt(sim_rotated.min_server_load(), 3),
                     Table::fmt(sim_rotated.probes_per_op.mean(), 2),
                     std::to_string(sim_rotated.stale_reads)});
  sim_table.print("Same comparison on the discrete-event simulator");
  std::printf(
      "\nWhat to look for: (a) hammers the head of the shared order; (b)\n"
      "flattens aggregate load to ~E[probes]/n = %.3f with identical\n"
      "per-object guarantees; (c) achieves low per-acquisition load even\n"
      "for a single object, at the price of more probes per op.\n",
      balanced.mean_probes / n);
  return 0;
}
