// A replicated register over a simulated wide-area network — the paper's
// motivating deployment. Compares majority quorums against OPT_d (and a
// composition) as server failure rates climb, reporting what an application
// actually sees: operation availability, probes (== wide-area messages) per
// operation, latency, and stale reads (the observable cost of probabilistic
// intersection).
//
// Build and run:  ./build/examples/wide_area_register

#include <cstdio>
#include <memory>

#include "core/composition.h"
#include "core/constructions.h"
#include "sim/harness.h"
#include "uqs/majority.h"
#include "util/table.h"

namespace sqs {
namespace {

RegisterExperimentConfig base_config(double server_down_fraction) {
  RegisterExperimentConfig config;
  config.num_clients = 8;
  config.duration = 1200.0;
  config.think_time = 0.5;
  // Servers flap with the requested stationary unavailability.
  config.server.mean_down = 10.0;
  config.server.mean_up = 10.0 * (1.0 - server_down_fraction) /
                          std::max(server_down_fraction, 1e-9);
  // Mildly flaky links: ~2% down at any instant (the mismatch source).
  config.network.link_mean_up = 50.0;
  config.network.link_mean_down = 1.0;
  config.seed = 20260705;
  return config;
}

void run_sweep() {
  const int n = 15;
  Table table({"p (server down)", "family", "op availability",
               "probes/op", "median-ish latency (mean, ms)", "stale reads",
               "reads ok"});
  for (double p : {0.05, 0.2, 0.4, 0.6}) {
    const RegisterExperimentConfig config = base_config(p);

    const MajorityFamily maj(n);
    const OptDFamily opt_d(n, 2);
    auto inner = std::make_shared<MajorityFamily>(7);
    const CompositionFamily comp(inner, n, 2);

    for (const QuorumFamily* family :
         std::initializer_list<const QuorumFamily*>{&maj, &opt_d, &comp}) {
      const RegisterExperimentResult r = run_register_experiment(*family, config);
      table.add_row({Table::fmt(p, 2), family->name(),
                     Table::fmt(r.availability(), 4),
                     Table::fmt(r.probes_per_op.mean(), 2),
                     Table::fmt(r.latency_ok.mean() * 1000.0, 1),
                     std::to_string(r.stale_reads),
                     std::to_string(r.reads_ok)});
    }
  }
  table.print("Replicated register over 15 wide-area servers, 8 clients, "
              "20 min simulated");
}

void run_filter_demo() {
  // Correlated mismatches via partial client partitions, with and without
  // the paper's filtering step ([17]).
  const int n = 15;
  Table table({"filter", "op availability", "stale reads", "reads ok",
               "ops filtered"});
  for (bool filter : {false, true}) {
    RegisterExperimentConfig config = base_config(0.02);
    config.duration = 2000.0;
    config.partition_rate = 0.04;       // a partition every ~25 s
    config.partition_fraction = 0.8;
    config.partition_duration = 8.0;
    config.client.use_partition_filter = filter;
    const OptDFamily fam(n, 1);
    const RegisterExperimentResult r = run_register_experiment(fam, config);
    table.add_row({filter ? "on ([17] beacon check)" : "off",
                   Table::fmt(r.availability(), 4),
                   std::to_string(r.stale_reads), std::to_string(r.reads_ok),
                   std::to_string(r.ops_filtered)});
  }
  table.print("Client partitions (correlated mismatches) vs the filtering "
              "step, OPT_d alpha=1");
}

}  // namespace
}  // namespace sqs

int main() {
  std::printf("Wide-area replicated register: majority vs SQS.\n");
  sqs::run_sweep();
  sqs::run_filter_demo();
  std::printf(
      "\nWhat to look for:\n"
      "  * majority availability collapses as p approaches and passes 1/2;\n"
      "    OPT_d keeps serving as long as ~2 servers respond;\n"
      "  * OPT_d pays ~4-8 probes/op regardless of n; majority pays ~n/2+;\n"
      "  * stale reads stay rare: they require 2 alpha simultaneous\n"
      "    mismatches (Theorem 9), at the measured link flap rate that is\n"
      "    a <<1%% event.\n");
  return 0;
}
